//! Hyaline: fast and transparent lock-free memory reclamation.
//!
//! This crate implements every algorithm of *"Hyaline: Fast and Transparent
//! Lock-Free Memory Reclamation"* (Nikolaev & Ravindran, PODC 2019):
//!
//! * [`Hyaline`] — the general multiple-list algorithm (Figure 3), including
//!   the §3.3 `trim` operation.
//! * [`Hyaline1`] — the single-width-CAS specialization with wait-free
//!   `enter`/`leave` (Figure 4).
//! * [`HyalineS`] — the robust extension using birth eras, per-slot access
//!   eras and `Ack`-based stall detection (Figure 5), with optional §4.3
//!   adaptive slot resizing (Figure 6).
//! * [`Hyaline1S`] — the robust per-thread-slot variant.
//! * [`llsc`] — a software model of single-width LL/SC reservation granules
//!   and the Figure 7 head operations built on them (the paper's PPC/MIPS
//!   port, §4.4).
//!
//! All variants implement the [`smr_core::Smr`] interface, so any data
//! structure written against it (see the `lockfree-ds` crate) can use them
//! interchangeably with the baseline schemes.
//!
//! # Quick start
//!
//! ```
//! use hyaline::Hyaline;
//! use smr_core::{Atomic, Shared, Smr, SmrHandle};
//! use std::sync::atomic::Ordering;
//!
//! let domain: Hyaline<String> = Hyaline::new();
//! let slot = Atomic::null();
//!
//! let mut h = domain.handle();
//! h.enter();
//! let node = h.alloc("hello".to_string());
//! slot.store(node, Ordering::Release);
//! // ... publish to other threads, operate, then unlink:
//! let unlinked = slot.swap(Shared::null(), Ordering::AcqRel);
//! unsafe { h.retire(unlinked) };
//! h.leave(); // the thread is immediately "off the hook"
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod head;
mod hyaline;
mod hyaline1;
mod hyaline1_s;
mod hyaline_s;
pub mod llsc;
mod registry;

pub use crate::hyaline::{Hyaline, HyalineHandle};
pub use crate::hyaline1::{Hyaline1, Hyaline1Handle};
pub use crate::hyaline1_s::{Hyaline1S, Hyaline1SHandle};
pub use crate::hyaline_s::{HyalineS, HyalineSHandle};
