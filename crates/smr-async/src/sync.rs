//! Waker-backed synchronisation primitives: a oneshot channel and a
//! [`Notify`] signal.
//!
//! These are the only inter-task signalling tools the service layer needs:
//! oneshot carries a value exactly once (the reclaimer shutdown handshake
//! returns drain statistics through it), while [`Notify`] is a bare
//! "something happened" edge with a one-permit memory so a notification
//! sent before anyone is waiting is not lost.
//!
//! Both register wakers under their internal mutex — the same lock every
//! sender takes before waking — so there is no lost-wakeup window, the
//! same discipline [`smr_core::HandlePool::check_out`] uses.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex, MutexGuard};
use std::task::{Context, Poll, Waker};

// ---------------------------------------------------------------------------
// Oneshot
// ---------------------------------------------------------------------------

enum OneshotState<T> {
    /// No value yet; the receiver may have parked a waker.
    Empty(Option<Waker>),
    /// Value delivered, not yet taken.
    Value(T),
    /// Sender dropped without sending, or value already taken.
    Closed,
}

struct OneshotInner<T> {
    state: Mutex<OneshotState<T>>,
}

impl<T> OneshotInner<T> {
    fn lock(&self) -> MutexGuard<'_, OneshotState<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Sending half of [`oneshot`]. Dropping it unsent closes the channel and
/// resolves the receiver with `None`.
pub struct Sender<T> {
    inner: Arc<OneshotInner<T>>,
    sent: bool,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("oneshot::Sender")
            .field("sent", &self.sent)
            .finish()
    }
}

impl<T> Sender<T> {
    /// Delivers the value and wakes the receiver. Consumes the sender; a
    /// oneshot carries at most one value.
    pub fn send(mut self, value: T) {
        let waker = {
            let mut state = self.inner.lock();
            match std::mem::replace(&mut *state, OneshotState::Value(value)) {
                OneshotState::Empty(waker) => waker,
                // Receiver already gone: the value is simply dropped.
                other => {
                    *state = other;
                    None
                }
            }
        };
        self.sent = true;
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.sent {
            return;
        }
        let waker = {
            let mut state = self.inner.lock();
            match std::mem::replace(&mut *state, OneshotState::Closed) {
                OneshotState::Empty(waker) => waker,
                OneshotState::Value(value) => {
                    // A sent-but-untaken value survives sender drop.
                    *state = OneshotState::Value(value);
                    None
                }
                OneshotState::Closed => None,
            }
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

/// Receiving half of [`oneshot`]: a future resolving to `Some(value)` on
/// send or `None` if the sender dropped unsent.
pub struct Receiver<T> {
    inner: Arc<OneshotInner<T>>,
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("oneshot::Receiver").finish_non_exhaustive()
    }
}

impl<T> Future for Receiver<T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut state = self.inner.lock();
        match std::mem::replace(&mut *state, OneshotState::Closed) {
            OneshotState::Value(value) => Poll::Ready(Some(value)),
            OneshotState::Closed => Poll::Ready(None),
            OneshotState::Empty(_) => {
                *state = OneshotState::Empty(Some(cx.waker().clone()));
                Poll::Pending
            }
        }
    }
}

/// Creates a single-value channel between two tasks.
///
/// # Example
///
/// ```
/// let (tx, rx) = smr_async::sync::oneshot();
/// tx.send(7u64);
/// assert_eq!(smr_async::block_on(rx), Some(7));
/// ```
pub fn oneshot<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(OneshotInner {
        state: Mutex::new(OneshotState::Empty(None)),
    });
    (
        Sender {
            inner: inner.clone(),
            sent: false,
        },
        Receiver { inner },
    )
}

// ---------------------------------------------------------------------------
// Notify
// ---------------------------------------------------------------------------

struct NotifyState {
    /// One stored notification, consumed by the next waiter. Prevents the
    /// notify-before-wait race from losing the edge.
    permit: bool,
    /// FIFO parked waiters, keyed so a cancelled future can deregister.
    waiters: VecDeque<(u64, Waker)>,
    next_key: u64,
}

/// An edge-triggered wakeup signal with a one-permit memory, in the shape
/// of tokio's `Notify`.
pub struct Notify {
    state: Mutex<NotifyState>,
}

impl std::fmt::Debug for Notify {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.lock();
        f.debug_struct("Notify")
            .field("permit", &state.permit)
            .field("waiters", &state.waiters.len())
            .finish()
    }
}

impl Default for Notify {
    fn default() -> Self {
        Notify::new()
    }
}

impl Notify {
    /// Creates a signal with no stored permit.
    pub fn new() -> Self {
        Notify {
            state: Mutex::new(NotifyState {
                permit: false,
                waiters: VecDeque::new(),
                next_key: 0,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, NotifyState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Wakes the longest-waiting [`notified`](Notify::notified) future, or
    /// stores a single permit if none is waiting.
    pub fn notify_one(&self) {
        let waker = {
            let mut state = self.lock();
            match state.waiters.pop_front() {
                Some((_, waker)) => Some(waker),
                None => {
                    state.permit = true;
                    None
                }
            }
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }

    /// A future that resolves on the next [`notify_one`](Notify::notify_one)
    /// (or immediately, if a permit is already stored).
    pub fn notified(&self) -> Notified<'_> {
        Notified {
            notify: self,
            key: None,
        }
    }
}

/// Future returned by [`Notify::notified`].
#[derive(Debug)]
pub struct Notified<'a> {
    notify: &'a Notify,
    /// Registration key while parked in the waiter queue.
    key: Option<u64>,
}

impl Future for Notified<'_> {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut state = self.notify.lock();
        // Woken by notify_one: our key was removed from the queue.
        if let Some(key) = self.key {
            if !state.waiters.iter().any(|(k, _)| *k == key) {
                self.key = None;
                return Poll::Ready(());
            }
            // Spurious poll while still queued: refresh the waker in place.
            for entry in state.waiters.iter_mut() {
                if entry.0 == key {
                    entry.1 = cx.waker().clone();
                }
            }
            return Poll::Pending;
        }
        if state.permit {
            state.permit = false;
            return Poll::Ready(());
        }
        let key = state.next_key;
        state.next_key += 1;
        state.waiters.push_back((key, cx.waker().clone()));
        self.key = Some(key);
        Poll::Pending
    }
}

impl Drop for Notified<'_> {
    fn drop(&mut self) {
        let Some(key) = self.key else { return };
        let mut state = self.notify.lock();
        let before = state.waiters.len();
        state.waiters.retain(|(k, _)| *k != key);
        // Still queued: plain cancellation. Already dequeued: a
        // notification was addressed to us and would be lost — pass the
        // baton to the next waiter (or bank it as a permit).
        if state.waiters.len() == before {
            drop(state);
            self.notify.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{block_on, scope, yield_now};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn oneshot_delivers_across_tasks() {
        let (tx, rx) = oneshot();
        let value = scope(2, |sp| {
            sp.spawn(async move {
                yield_now().await;
                tx.send(99u64);
            });
            block_on(rx)
        });
        assert_eq!(value, Some(99));
    }

    #[test]
    fn oneshot_sender_drop_closes() {
        let (tx, rx) = oneshot::<u64>();
        drop(tx);
        assert_eq!(block_on(rx), None);
    }

    #[test]
    fn notify_permit_survives_early_notification() {
        let notify = Notify::new();
        notify.notify_one();
        block_on(notify.notified()); // resolves on the stored permit
    }

    #[test]
    fn notify_wakes_parked_waiter() {
        let notify = Notify::new();
        let hits = AtomicU64::new(0);
        scope(2, |sp| {
            let notify = &notify;
            let hits = &hits;
            sp.spawn(async move {
                notify.notified().await;
                hits.fetch_add(1, Ordering::Relaxed);
            });
            sp.spawn(async move {
                yield_now().await;
                notify.notify_one();
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cancelled_notified_passes_the_baton() {
        let notify = Notify::new();
        // Park a future, address a notification to it, then drop it
        // without polling: the permit must not be lost.
        let mut parked = Box::pin(notify.notified());
        let noop = crate::testutil::noop_waker();
        let mut cx = Context::from_waker(&noop);
        assert!(parked.as_mut().poll(&mut cx).is_pending());
        notify.notify_one(); // dequeues `parked`, wakes it
        drop(parked); // never polled again: baton must pass on
        block_on(notify.notified()); // resolves via the re-banked permit
    }
}
