//! An end-to-end KV cache service: the connection-scale oversubscription
//! demo.
//!
//! This is the paper's Figure-8/9 oversubscription story made concrete:
//! `connections` lightweight tasks (tens of thousands) churn get/put/delete
//! against one concurrent map while sharing a handle registry capped far
//! below the task count — typically ≤ 2× the hardware threads. Each
//! connection awaits a [`TaskGuard`] per burst, so handle pressure turns
//! into FIFO awaiting rather than thread blocking, and every check-in is
//! deferred to the per-shard background reclaimers of
//! [`ReclaimRouter`].
//!
//! Key choice is zipfian-ish (the minimum of two uniform draws, skewing
//! toward low keys) from the offline `rand` shim, so hot keys contend the
//! way a real cache's do.
//!
//! The run reports throughput **and** `peak_unreclaimed` — the largest
//! domain-wide retired-minus-freed estimate sampled during the run — which
//! is what lands in the JSONL pipeline via the `kv-service` sweep and is
//! gated by `perfgate`: a reclaimer regression shows up as a growing peak
//! even when Mops/s looks healthy.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use lockfree_ds::ConcurrentMap;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use smr_core::{HandlePool, Smr, SmrHandle};

use crate::executor::{block_on, scope, yield_now};
use crate::guard::TaskGuard;
use crate::reclaimer::{ReclaimRouter, ReclaimStats};
use crate::sync::oneshot;

/// Workload shape for [`run_kv_service`].
#[derive(Debug, Clone)]
pub struct KvConfig {
    /// Simulated concurrent connections (cooperative tasks, not threads).
    pub connections: usize,
    /// Operations each connection performs over its lifetime.
    pub ops_per_connection: usize,
    /// Operations per guard checkout: a connection holds its handle for
    /// one burst, then returns it (dirty) and yields.
    pub burst: usize,
    /// Keys are drawn from `0..key_range`.
    pub key_range: u64,
    /// Percentage of operations that are gets.
    pub get_pct: u32,
    /// Percentage of operations that are puts (the rest are deletes).
    pub put_pct: u32,
    /// Background reclaimer tasks (one hand-off queue each).
    pub reclaim_shards: usize,
    /// Capacity of each reclaimer's ticket queue.
    pub queue_capacity: usize,
    /// Executor worker threads.
    pub workers: usize,
    /// Workload RNG seed; each connection derives its own stream.
    pub seed: u64,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            connections: 256,
            ops_per_connection: 64,
            burst: 16,
            key_range: 1024,
            get_pct: 70,
            put_pct: 20,
            reclaim_shards: 2,
            queue_capacity: 64,
            workers: 2,
            seed: 0x5eed_cafe,
        }
    }
}

/// What a [`run_kv_service`] run measured.
#[derive(Debug, Clone, Copy)]
pub struct KvReport {
    /// Total completed map operations.
    pub ops: u64,
    /// Wall-clock duration of the run (spawn to quiescence).
    pub elapsed: Duration,
    /// Largest `unreclaimed_estimate` observed during the run.
    pub peak_unreclaimed: u64,
    /// Aggregated reclaimer-side work across all shards.
    pub reclaim: ReclaimStats,
}

impl KvReport {
    /// Millions of operations per second.
    pub fn mops(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.ops as f64 / secs / 1e6
    }
}

/// Zipfian-ish skew: the minimum of two uniform draws concentrates mass
/// on low keys without needing floating-point sampling from the shim.
fn skewed_key(rng: &mut SmallRng, range: u64) -> u64 {
    let a = rng.gen_range(0..range);
    let b = rng.gen_range(0..range);
    a.min(b)
}

/// Drives the full service against `map`: spawns one task per connection
/// plus the per-shard reclaimers, runs to quiescence, and returns the
/// measurements. The caller owns the map and the pool, so the registry cap
/// (pool capacity) is an explicit knob — the oversubscription story is
/// `cfg.connections` ≫ `pool.capacity()`.
///
/// # Panics
///
/// Panics if `get_pct + put_pct > 100` or any config field is zero where
/// that makes no sense (connections, burst, key_range, workers).
pub fn run_kv_service<'d, S, M>(
    map: &'d M,
    pool: &HandlePool<'d, M::Node, S>,
    cfg: &KvConfig,
) -> KvReport
where
    S: Smr<M::Node>,
    M: ConcurrentMap<S>,
{
    assert!(cfg.get_pct + cfg.put_pct <= 100, "op mix over 100%");
    assert!(cfg.connections >= 1, "need at least one connection");
    assert!(cfg.burst >= 1, "burst must make progress");
    assert!(cfg.key_range >= 1, "empty key range");
    assert!(cfg.workers >= 1, "executor needs a worker");

    let router = ReclaimRouter::new(cfg.reclaim_shards, cfg.queue_capacity);
    let gate = router.shutdown_gate(cfg.connections);
    let ops = AtomicU64::new(0);
    let peak = AtomicU64::new(0);
    let started = Instant::now();

    let reclaim = scope(cfg.workers, |sp| {
        let mut stat_rxs = Vec::with_capacity(router.shards());
        for shard in 0..router.shards() {
            let (tx, rx) = oneshot();
            let router = &router;
            sp.spawn(async move {
                tx.send(router.run_shard(shard, pool).await);
            });
            stat_rxs.push(rx);
        }
        for conn in 0..cfg.connections {
            let router = &router;
            let gate = &gate;
            let ops = &ops;
            let peak = &peak;
            let cfg = cfg.clone();
            sp.spawn(async move {
                // Drop-guard departure: the gate closes the reclaimer
                // queues when the last connection ends, panic or not.
                let _departure = gate.departure();
                let mut rng = SmallRng::seed_from_u64(
                    cfg.seed ^ (conn as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                let mut remaining = cfg.ops_per_connection;
                while remaining > 0 {
                    let burst = cfg.burst.min(remaining);
                    {
                        let mut guard =
                            TaskGuard::acquire_deferred(pool, router.queue(conn)).await;
                        for _ in 0..burst {
                            let key = skewed_key(&mut rng, cfg.key_range);
                            let roll: u32 = rng.gen_range(0..100);
                            guard.enter();
                            if roll < cfg.get_pct {
                                map.map_get(&mut guard, key);
                            } else if roll < cfg.get_pct + cfg.put_pct {
                                map.map_insert(&mut guard, key, conn as u64 ^ key);
                            } else {
                                map.map_remove(&mut guard, key);
                            }
                            guard.leave();
                        }
                    } // dirty check-in + reclaimer ticket
                    ops.fetch_add(burst as u64, Ordering::Relaxed);
                    peak.fetch_max(map.domain().unreclaimed_estimate(), Ordering::Relaxed);
                    remaining -= burst;
                    yield_now().await;
                }
            });
        }
        // The workers drive the fleet while this thread collects the
        // shutdown handshakes; each resolves once its reclaimer has
        // drained, swept, and rejoined.
        let mut total = ReclaimStats::default();
        for rx in stat_rxs {
            if let Some(stats) = block_on(rx) {
                total.flushed += stats.flushed;
                total.vacuous += stats.vacuous;
                total.swept += stats.swept;
            }
        }
        total
    });

    let elapsed = started.elapsed();
    debug_assert_eq!(pool.dirty(), 0, "shutdown sweep left dirty handles");
    KvReport {
        ops: ops.load(Ordering::Relaxed),
        elapsed,
        peak_unreclaimed: peak.load(Ordering::Relaxed),
        reclaim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockfree_ds::MichaelHashMap;
    use smr_baselines::Ebr;
    use smr_core::{Sharded, SmrConfig};

    #[test]
    fn kv_service_runs_to_quiescence() {
        let config = SmrConfig {
            slots: 8,
            batch_min: 4,
            max_threads: 8,
            ..SmrConfig::default()
        };
        let map: MichaelHashMap<u64, u64, Ebr<_>> = MichaelHashMap::with_config(config);
        let pool = HandlePool::new(map.domain(), 4);
        let cfg = KvConfig {
            connections: 128,
            ops_per_connection: 32,
            burst: 8,
            ..KvConfig::default()
        };
        let report = run_kv_service(&map, &pool, &cfg);
        assert_eq!(report.ops, 128 * 32);
        assert_eq!(pool.checked_out(), 0, "every guard returned its handle");
        assert_eq!(pool.dirty(), 0, "every dirty handle was flushed");
        assert!(pool.issued() <= 4, "registry cap respected");
    }

    #[test]
    fn kv_service_drives_sharded_domains() {
        let config = SmrConfig {
            slots: 8,
            batch_min: 4,
            max_threads: 8,
            shards: 2,
            ..SmrConfig::default()
        };
        let map: MichaelHashMap<u64, u64, Sharded<Ebr<_>>> = MichaelHashMap::with_config(config);
        let pool = HandlePool::new(map.domain(), 4);
        let cfg = KvConfig {
            connections: 64,
            ops_per_connection: 16,
            burst: 4,
            reclaim_shards: 2,
            ..KvConfig::default()
        };
        let report = run_kv_service(&map, &pool, &cfg);
        assert_eq!(report.ops, 64 * 16);
        assert_eq!(pool.dirty(), 0);
    }
}
