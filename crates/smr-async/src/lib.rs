//! Async-native service layer over `smr-core`.
//!
//! The paper's oversubscription claim — handle-cheap reclamation that
//! scales past thread-per-handle — is only exercised end-to-end when
//! *many more tasks than handles* actually run. This crate supplies the
//! async machinery to do that without external dependencies:
//!
//! * [`executor`]: a scoped multi-worker executor ([`scope`], [`block_on`],
//!   [`yield_now`]) whose tasks may borrow the reclamation domain from the
//!   caller's stack, mirroring [`std::thread::scope`].
//! * [`sync`]: waker-backed [`oneshot`](sync::oneshot) and
//!   [`Notify`](sync::Notify) primitives.
//! * [`queue`]: the bounded [`DrainQueue`] hand-off
//!   between hot-path producers and async consumers.
//! * [`guard`]: [`TaskGuard`], a task-scoped pooled
//!   handle acquired via the async, FIFO-fair
//!   [`HandlePool::check_out`](smr_core::HandlePool::check_out) path.
//! * [`reclaimer`]: per-shard background reclaimer tasks that flush dirty
//!   handles off the hot path, with a panic-safe shutdown handshake.
//! * [`kv`]: the end-to-end connection-scale KV cache demo feeding the
//!   `kv-service` benchmark sweep.
//!
//! Nothing here sleeps or parks a thread from task context — reclaimers
//! and connections yield cooperatively (`smr-lint` enforces the absence of
//! `thread::sleep`/`thread::park` in this crate, including its tests).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(rust_2018_idioms)]

pub mod executor;
pub mod guard;
pub mod kv;
pub mod queue;
pub mod reclaimer;
pub mod sync;

pub use executor::{block_on, scope, yield_now, Spawner, YieldNow};
pub use guard::TaskGuard;
pub use kv::{run_kv_service, KvConfig, KvReport};
pub use queue::{DrainQueue, PushError};
pub use reclaimer::{ReclaimRouter, ReclaimStats, ReclaimTicket, ShutdownGate};

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::Arc;
    use std::task::{Wake, Waker};

    struct Noop;
    impl Wake for Noop {
        fn wake(self: Arc<Self>) {}
    }

    /// A waker that ignores wakes, for polling futures by hand in tests.
    pub(crate) fn noop_waker() -> Waker {
        Waker::from(Arc::new(Noop))
    }
}
