//! A bounded hand-off queue between hot-path tasks and background
//! reclaimers.
//!
//! Producers are synchronous and never wait: [`DrainQueue::try_push`] either
//! enqueues or reports [`Full`](PushError::Full)/[`Closed`](PushError::Closed)
//! so a connection task can fall back to doing the work inline instead of
//! stalling its worker thread. Consumers are asynchronous:
//! [`DrainQueue::recv`] awaits the next item and resolves to `None` only
//! once the queue is closed **and** drained — the property the shutdown
//! handshake (and the `interleave::reclaimer` model check) relies on: no
//! item pushed before `close` is ever dropped.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Mutex, MutexGuard};
use std::task::{Context, Poll, Waker};

/// Why a [`DrainQueue::try_push`] was refused; the item comes back so the
/// caller can handle it inline.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the consumer is behind.
    Full(T),
    /// The queue has been closed; no new work is accepted.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recovers the rejected item.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    /// FIFO parked receivers, keyed so a cancelled `Recv` can deregister.
    waiters: VecDeque<(u64, Waker)>,
    next_key: u64,
}

/// A bounded multi-producer queue with async consumers. See the module
/// docs for the push/drain/shutdown protocol.
pub struct DrainQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
}

impl<T> std::fmt::Debug for DrainQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.lock();
        f.debug_struct("DrainQueue")
            .field("capacity", &self.capacity)
            .field("len", &state.items.len())
            .field("closed", &state.closed)
            .field("waiters", &state.waiters.len())
            .finish()
    }
}

impl<T> DrainQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "a zero-capacity queue can never hand off");
        DrainQueue {
            capacity,
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
                waiters: VecDeque::new(),
                next_key: 0,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// True once [`close`](DrainQueue::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Enqueues without blocking, waking the longest-parked receiver.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let waker = {
            let mut state = self.lock();
            if state.closed {
                return Err(PushError::Closed(item));
            }
            if state.items.len() >= self.capacity {
                return Err(PushError::Full(item));
            }
            state.items.push_back(item);
            state.waiters.pop_front().map(|(_, waker)| waker)
        };
        if let Some(waker) = waker {
            waker.wake();
        }
        Ok(())
    }

    /// Closes the queue: future pushes fail, and once the backlog drains,
    /// every pending and future [`recv`](DrainQueue::recv) resolves `None`.
    /// Idempotent.
    pub fn close(&self) {
        let waiters = {
            let mut state = self.lock();
            state.closed = true;
            std::mem::take(&mut state.waiters)
        };
        for (_, waker) in waiters {
            waker.wake();
        }
    }

    /// Awaits the next item; `None` after [`close`](DrainQueue::close) once
    /// the backlog is drained.
    pub fn recv(&self) -> Recv<'_, T> {
        Recv {
            queue: self,
            key: None,
        }
    }
}

/// Future returned by [`DrainQueue::recv`].
#[derive(Debug)]
pub struct Recv<'a, T> {
    queue: &'a DrainQueue<T>,
    /// Registration key while parked in the waiter queue.
    key: Option<u64>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut state = self.queue.lock();
        if let Some(item) = state.items.pop_front() {
            if let Some(key) = self.key.take() {
                state.waiters.retain(|(k, _)| *k != key);
            }
            // Hand the signal on if more work remains for other receivers.
            let extra = if !state.items.is_empty() {
                state.waiters.pop_front().map(|(_, waker)| waker)
            } else {
                None
            };
            drop(state);
            if let Some(waker) = extra {
                waker.wake();
            }
            return Poll::Ready(Some(item));
        }
        if state.closed {
            if let Some(key) = self.key.take() {
                state.waiters.retain(|(k, _)| *k != key);
            }
            return Poll::Ready(None);
        }
        match self.key {
            Some(key) => {
                // Spurious poll while still parked: refresh the waker.
                let mut found = false;
                for entry in state.waiters.iter_mut() {
                    if entry.0 == key {
                        entry.1 = cx.waker().clone();
                        found = true;
                    }
                }
                if !found {
                    // We were woken for an item another receiver beat us
                    // to; re-park at the back.
                    state.waiters.push_back((key, cx.waker().clone()));
                }
            }
            None => {
                let key = state.next_key;
                state.next_key += 1;
                state.waiters.push_back((key, cx.waker().clone()));
                self.key = Some(key);
            }
        }
        Poll::Pending
    }
}

impl<T> Drop for Recv<'_, T> {
    fn drop(&mut self) {
        let Some(key) = self.key else { return };
        let mut state = self.queue.lock();
        let before = state.waiters.len();
        state.waiters.retain(|(k, _)| *k != key);
        if state.waiters.len() == before && !state.items.is_empty() {
            // We were already dequeued by a push addressed to us but never
            // polled again: wake the next parked receiver so the item is
            // not stranded.
            let next = state.waiters.pop_front().map(|(_, waker)| waker);
            drop(state);
            if let Some(waker) = next {
                waker.wake();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{block_on, scope, yield_now};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn push_then_recv_round_trips() {
        let q = DrainQueue::new(4);
        q.try_push(7u64).unwrap();
        assert_eq!(block_on(q.recv()), Some(7));
    }

    #[test]
    fn full_and_closed_hand_the_item_back() {
        let q = DrainQueue::new(1);
        q.try_push(1u64).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(PushError::Full(9u64).into_inner(), 9);
    }

    #[test]
    fn close_drains_backlog_before_none() {
        let q = DrainQueue::new(4);
        q.try_push(1u64).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(block_on(q.recv()), Some(1));
        assert_eq!(block_on(q.recv()), Some(2));
        assert_eq!(block_on(q.recv()), None);
        assert_eq!(block_on(q.recv()), None, "None is sticky");
    }

    #[test]
    fn parked_receiver_wakes_on_push() {
        let q = DrainQueue::new(2);
        let got = AtomicU64::new(0);
        scope(2, |sp| {
            let q = &q;
            let got = &got;
            sp.spawn(async move {
                while let Some(item) = q.recv().await {
                    got.fetch_add(item, Ordering::Relaxed);
                }
            });
            sp.spawn(async move {
                for i in 1..=10u64 {
                    // Bounded queue + single consumer: retry until space.
                    let mut item = i;
                    loop {
                        match q.try_push(item) {
                            Ok(()) => break,
                            Err(PushError::Full(back)) => {
                                item = back;
                                yield_now().await;
                            }
                            Err(PushError::Closed(_)) => unreachable!(),
                        }
                    }
                }
                q.close();
            });
        });
        assert_eq!(got.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn cancelled_recv_deregisters_and_unstrands_items() {
        let q = DrainQueue::new(2);
        let noop = crate::testutil::noop_waker();
        let mut cx = Context::from_waker(&noop);
        let mut first = Box::pin(q.recv());
        assert!(first.as_mut().poll(&mut cx).is_pending());
        let mut second = Box::pin(q.recv());
        assert!(second.as_mut().poll(&mut cx).is_pending());
        // Push dequeues `first`'s waker; dropping `first` unpolled must
        // hand the item to `second` instead of stranding it.
        q.try_push(5u64).unwrap();
        drop(first);
        assert_eq!(block_on(second), Some(5));
    }
}
