//! Background reclaimer tasks: flushing deferred retire lists off the
//! hot path.
//!
//! Crystalline's observation (PAPERS.md) is that Hyaline's batch skeleton
//! thrives when retire work moves off the operation's critical path. Here
//! that split is explicit: connection guards park their handles **dirty**
//! (retire batch accumulated, not yet flushed into the domain's slot
//! lists) and push one [`ReclaimTicket`] per dirty handle into their
//! shard's bounded [`DrainQueue`]; one reclaimer task per shard drains
//! tickets and performs the matching [`HandlePool::flush_one_dirty`].
//!
//! The protocol's invariant — exactly one ticket in flight per dirty
//! handle, every ticket eventually matched by one flush (or absorbed
//! inline on Full/Closed fallback) — is what `interleave::reclaimer`
//! model-checks exhaustively.
//!
//! **Shutdown handshake.** The service wraps its connection fleet in a
//! [`ShutdownGate`]; each connection holds a [`Departure`] drop-guard, so
//! even a panicking connection counts down. When the last connection
//! departs the gate closes every queue: reclaimers drain the remaining
//! backlog ([`DrainQueue::recv`] keeps yielding queued tickets after
//! close), run one final [`HandlePool::flush_dirty`] sweep, and return
//! their [`ReclaimStats`] — at which point no retire batch is left parked
//! dirty.

use std::sync::atomic::{AtomicUsize, Ordering};

use smr_core::{HandlePool, Smr};

use crate::executor::yield_now;
use crate::queue::DrainQueue;

/// One unit of deferred flush work: "a dirty handle is parked, flush one".
///
/// Deliberately carries no handle identity — reclaimers flush *any* dirty
/// handle, so a dirty handle re-issued to a new task (the pool serves
/// dirty handles to keep latency down) simply keeps accumulating and the
/// ticket matches whichever dirty handle is parked when it drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReclaimTicket;

/// What one reclaimer task did before rejoining.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReclaimStats {
    /// Tickets received whose flush found a dirty handle.
    pub flushed: usize,
    /// Tickets received that found no dirty handle (it had been re-issued
    /// or flushed inline by a Full/Closed fallback).
    pub vacuous: usize,
    /// Dirty handles flushed by the final shutdown sweep.
    pub swept: usize,
}

/// Routes deferred-flush tickets to per-shard reclaimer queues.
#[derive(Debug)]
pub struct ReclaimRouter {
    queues: Vec<DrainQueue<ReclaimTicket>>,
}

impl ReclaimRouter {
    /// One bounded queue (capacity `queue_capacity`) per reclaimer shard.
    pub fn new(shards: usize, queue_capacity: usize) -> Self {
        assert!(shards >= 1, "need at least one reclaimer shard");
        ReclaimRouter {
            queues: (0..shards)
                .map(|_| DrainQueue::new(queue_capacity))
                .collect(),
        }
    }

    /// Number of reclaimer shards.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// The queue a producer with affinity `key` (connection id, shard
    /// index, …) should push to.
    pub fn queue(&self, key: usize) -> &DrainQueue<ReclaimTicket> {
        &self.queues[key % self.queues.len()]
    }

    /// Closes every shard queue, releasing the reclaimers to drain and
    /// sweep. Idempotent.
    pub fn close_all(&self) {
        for queue in &self.queues {
            queue.close();
        }
    }

    /// Tickets currently queued across all shards.
    pub fn backlog(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// A [`ShutdownGate`] that calls [`close_all`](ReclaimRouter::close_all)
    /// after `parties` departures.
    pub fn shutdown_gate(&self, parties: usize) -> ShutdownGate<'_> {
        ShutdownGate {
            router: self,
            remaining: AtomicUsize::new(parties),
        }
    }

    /// The reclaimer task body for one shard: drain tickets (flushing one
    /// dirty handle each, yielding between flushes so ten thousand
    /// connections are not starved of workers), then — once the queue is
    /// closed and empty — sweep every remaining dirty handle and rejoin.
    pub async fn run_shard<T, S>(&self, shard: usize, pool: &HandlePool<'_, T, S>) -> ReclaimStats
    where
        T: Send + 'static,
        S: Smr<T>,
    {
        let queue = &self.queues[shard % self.queues.len()];
        let mut stats = ReclaimStats::default();
        while let Some(ReclaimTicket) = queue.recv().await {
            if pool.flush_one_dirty() {
                stats.flushed += 1;
            } else {
                stats.vacuous += 1;
            }
            yield_now().await;
        }
        // Queue closed and drained: anything still parked dirty (e.g. a
        // ticket absorbed by an inline Closed-fallback on another shard)
        // is swept here so the domain sees every retire before we rejoin.
        stats.swept = pool.flush_dirty();
        stats
    }
}

/// Counts task departures and closes the router's queues after the last
/// one. Handed out as [`Departure`] drop-guards so panicking tasks still
/// count down — the shutdown handshake cannot hang on a lost decrement.
#[derive(Debug)]
pub struct ShutdownGate<'a> {
    router: &'a ReclaimRouter,
    remaining: AtomicUsize,
}

impl<'a> ShutdownGate<'a> {
    /// Registers one party; dropping the returned guard records its
    /// departure.
    pub fn departure(&'a self) -> Departure<'a> {
        Departure { gate: self }
    }

    /// Parties that have not yet departed.
    pub fn remaining(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }
}

/// Drop-guard for one [`ShutdownGate`] party.
#[derive(Debug)]
pub struct Departure<'a> {
    gate: &'a ShutdownGate<'a>,
}

impl Drop for Departure<'_> {
    fn drop(&mut self) {
        if self.gate.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.gate.router.close_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{block_on, scope, yield_now};
    use crate::guard::TaskGuard;
    use smr_baselines::Ebr;
    use smr_core::{SmrConfig, SmrHandle};
    use smr_testkit::drop_tracker::{DropRegistry, Tracked};

    fn config() -> SmrConfig {
        SmrConfig {
            slots: 4,
            batch_min: 2,
            max_threads: 4,
            ..SmrConfig::default()
        }
    }

    #[test]
    fn reclaimers_drain_every_ticket_and_sweep() {
        let registry = DropRegistry::new();
        {
            let domain: Ebr<Tracked<u64>> = Ebr::with_config(config());
            let pool = HandlePool::new(&domain, 2);
            let router = ReclaimRouter::new(2, 16);
            let gate = router.shutdown_gate(24);
            scope(2, |sp| {
                for shard in 0..router.shards() {
                    let router = &router;
                    let pool = &pool;
                    sp.spawn(async move {
                        let stats = router.run_shard(shard, pool).await;
                        // Every ticket is accounted for, one way or the other.
                        let _ = stats;
                    });
                }
                for conn in 0..24usize {
                    let router = &router;
                    let pool = &pool;
                    let gate = &gate;
                    let registry = &registry;
                    sp.spawn(async move {
                        let _departure = gate.departure();
                        let mut guard =
                            TaskGuard::acquire_deferred(pool, router.queue(conn)).await;
                        guard.enter();
                        let node = guard.alloc(registry.track(conn as u64));
                        // SAFETY: freshly allocated, never published.
                        unsafe { guard.retire(node) };
                        guard.leave();
                        drop(guard);
                        yield_now().await;
                    });
                }
            });
            assert_eq!(pool.dirty(), 0, "shutdown sweep left nothing dirty");
            assert_eq!(router.backlog(), 0, "no ticket dropped");
        }
        registry.assert_quiescent();
    }

    #[test]
    fn gate_closes_after_last_departure_even_on_panic() {
        let router = ReclaimRouter::new(1, 4);
        let gate = router.shutdown_gate(2);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _departure = gate.departure();
            panic!("connection died");
        }));
        assert!(outcome.is_err());
        assert!(!router.queue(0).is_closed(), "one party remains");
        drop(gate.departure());
        assert!(router.queue(0).is_closed(), "last departure closed");
    }

    #[test]
    fn run_shard_returns_after_close_with_empty_queue() {
        let domain: Ebr<u64> = Ebr::with_config(config());
        let pool = HandlePool::new(&domain, 2);
        let router = ReclaimRouter::new(1, 4);
        router.close_all();
        let stats = block_on(router.run_shard(0, &pool));
        assert_eq!(stats, ReclaimStats::default());
    }
}
