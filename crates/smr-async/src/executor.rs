//! A dependency-free scoped multi-worker executor.
//!
//! The workspace builds offline, so instead of tokio this module provides
//! the minimal executor the SMR service layer needs: a fixed pool of worker
//! threads polling tasks from one shared injector queue. There is no I/O
//! reactor and no timer wheel — every wakeup comes from another task (or
//! from a domain-side waker such as [`smr_core::HandlePool::check_out`]),
//! which is exactly the shape of an SMR service workload.
//!
//! Two properties matter for the service layer and drive the design:
//!
//! * **Borrowed tasks.** Service tasks borrow the reclamation domain, the
//!   [`smr_core::HandlePool`], and the data structure from the caller's
//!   stack frame; requiring `'static` futures would force `Arc`-wrapping
//!   every domain. [`scope`] therefore mirrors [`std::thread::scope`]: all
//!   tasks are guaranteed to have run to completion (and their futures
//!   dropped) before `scope` returns, so futures may borrow anything that
//!   outlives the call.
//! * **No blocking primitives in task context.** Workers park on a
//!   [`Condvar`] when the injector is empty; tasks themselves must never
//!   call `thread::sleep`/`thread::park` (enforced by `smr-lint`) — they
//!   yield with [`yield_now`] or await a waker-backed primitive instead.
//!
//! Worker threads are OS threads, so `scope(workers, ..)` with `workers >=
//! 1` makes progress even on a single-core host; tens of thousands of
//! cooperative tasks multiplex over that fixed worker set.

use std::collections::VecDeque;
use std::future::Future;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// State shared between the scope owner, the workers, and every task waker.
struct Shared {
    /// FIFO injector; tasks are pushed here when spawned or woken.
    injector: Mutex<VecDeque<Arc<Task>>>,
    /// Signalled when the injector gains a task, a task completes, or
    /// shutdown begins.
    available: Condvar,
    /// Tasks spawned but not yet run to completion.
    live: AtomicUsize,
    /// Set once the scope has quiesced; workers exit when they see it.
    shutdown: AtomicBool,
    /// First panic payload captured from a task, re-raised at scope exit.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Shared {
    fn new() -> Self {
        Shared {
            injector: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            live: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panic: Mutex::new(None),
        }
    }

    fn lock_injector(&self) -> std::sync::MutexGuard<'_, VecDeque<Arc<Task>>> {
        // Poisoning only happens if a worker panicked outside catch_unwind;
        // the queue itself is always in a consistent state.
        self.injector.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push(&self, task: Arc<Task>) {
        self.lock_injector().push_back(task);
        self.available.notify_one();
    }

    /// Marks one task complete; wakes everyone when the scope quiesces so
    /// the owner thread can observe `live == 0`.
    fn task_done(&self) {
        if self.live.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.lock_injector();
            self.available.notify_all();
        }
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
        slot.get_or_insert(payload);
    }
}

/// One spawned task: the future plus its re-queue latch.
struct Task {
    /// `None` once the future has completed (or panicked); stale wakeups
    /// after that are no-ops.
    future: Mutex<Option<BoxFuture>>,
    /// True while the task sits in the injector, so concurrent wakes
    /// enqueue it exactly once.
    queued: AtomicBool,
    shared: Arc<Shared>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        if !self.queued.swap(true, Ordering::AcqRel) {
            let shared = self.shared.clone();
            shared.push(self);
        }
    }
}

/// Polls one task, catching panics so a failing task cannot take its worker
/// thread (and the whole scope) down with it.
fn run_task(task: Arc<Task>) {
    // Clear the latch *before* polling: a wake that lands mid-poll must
    // re-queue the task or its readiness would be lost.
    task.queued.store(false, Ordering::Release);
    let waker = Waker::from(task.clone());
    let mut cx = Context::from_waker(&waker);
    let mut slot = task.future.lock().unwrap_or_else(|e| e.into_inner());
    let Some(future) = slot.as_mut() else {
        return; // stale wakeup of a completed task
    };
    match catch_unwind(AssertUnwindSafe(|| future.as_mut().poll(&mut cx))) {
        Ok(Poll::Pending) => {}
        Ok(Poll::Ready(())) => {
            *slot = None;
            drop(slot);
            task.shared.task_done();
        }
        Err(payload) => {
            *slot = None;
            drop(slot);
            task.shared.record_panic(payload);
            task.shared.task_done();
        }
    }
}

/// Worker thread body: pop-and-poll until shutdown with an empty queue.
fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut queue = shared.lock_injector();
            loop {
                if let Some(task) = queue.pop_front() {
                    break Some(task);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        match task {
            Some(task) => run_task(task),
            None => return,
        }
    }
}

/// The scope owner helps run tasks until every spawned task has completed.
fn help_until_quiescent(shared: &Shared) {
    loop {
        let task = {
            let mut queue = shared.lock_injector();
            loop {
                if let Some(task) = queue.pop_front() {
                    break Some(task);
                }
                if shared.live.load(Ordering::Acquire) == 0 {
                    break None;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        match task {
            Some(task) => run_task(task),
            None => return,
        }
    }
}

/// Spawns borrowed futures into the surrounding [`scope`].
///
/// The two lifetimes mirror [`std::thread::Scope`]: `'scope` is the period
/// the spawner itself is usable, `'env` is the environment tasks may
/// borrow. The `PhantomData` makes `'scope` invariant so a spawner cannot
/// be smuggled out of its scope.
pub struct Spawner<'scope, 'env> {
    shared: &'scope Arc<Shared>,
    _marker: PhantomData<&'scope mut &'env ()>,
}

impl std::fmt::Debug for Spawner<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Spawner")
            .field("live", &self.shared.live.load(Ordering::Relaxed))
            .finish()
    }
}

impl<'scope, 'env> Spawner<'scope, 'env> {
    /// Spawns a task. The future may borrow anything that outlives the
    /// enclosing [`scope`] call; it runs to completion before `scope`
    /// returns.
    ///
    /// A panicking task does not abort its siblings — the first payload is
    /// re-raised from `scope` after the remaining tasks finish.
    pub fn spawn<F>(&self, future: F)
    where
        F: Future<Output = ()> + Send + 'env,
    {
        let boxed: Pin<Box<dyn Future<Output = ()> + Send + 'env>> = Box::pin(future);
        // SAFETY: the future only borrows data outliving 'env, and `scope`
        // does not return until `live == 0` — i.e. until this future has
        // been polled to completion (or panicked) and dropped. The only
        // thing that can outlive the scope is the task shell with its
        // future slot already `None` (held alive by a stale waker parked
        // in some external waker registry), which never touches 'env data.
        // This is the same join-before-return argument std::thread::scope
        // makes for its borrowed closures.
        let boxed: BoxFuture = unsafe { std::mem::transmute(boxed) };
        let task = Arc::new(Task {
            future: Mutex::new(Some(boxed)),
            queued: AtomicBool::new(true),
            shared: self.shared.clone(),
        });
        self.shared.live.fetch_add(1, Ordering::AcqRel);
        self.shared.push(task);
    }

    /// Number of spawned tasks that have not yet run to completion.
    pub fn live(&self) -> usize {
        self.shared.live.load(Ordering::Acquire)
    }
}

/// Runs `f` with a [`Spawner`], then drives every spawned task to
/// completion on `workers` worker threads (the calling thread helps too)
/// before returning `f`'s result.
///
/// Tasks may borrow any data that outlives the `scope` call itself — the
/// reclamation domain, a [`smr_core::HandlePool`], a shared map — exactly
/// like closures under [`std::thread::scope`]. Tasks cannot spawn further
/// tasks (the spawner is scoped to `f`); spawn the whole fleet up front.
///
/// If `f` or any task panics, the scope still drains to quiescence (so no
/// borrowed future outlives its data) and then re-raises the first panic.
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let hits = AtomicUsize::new(0);
/// smr_async::scope(2, |sp| {
///     for _ in 0..1000 {
///         sp.spawn(async {
///             smr_async::yield_now().await;
///             hits.fetch_add(1, Ordering::Relaxed);
///         });
///     }
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 1000);
/// ```
pub fn scope<'env, T, F>(workers: usize, f: F) -> T
where
    F: for<'scope> FnOnce(&'scope Spawner<'scope, 'env>) -> T,
{
    assert!(workers >= 1, "executor scope needs at least one worker");
    let shared = Arc::new(Shared::new());
    let spawner = Spawner {
        shared: &shared,
        _marker: PhantomData,
    };
    let result = std::thread::scope(|s| {
        for _ in 0..workers {
            let shared = Arc::clone(&shared);
            s.spawn(move || worker_loop(&shared));
        }
        let result = catch_unwind(AssertUnwindSafe(|| f(&spawner)));
        // Quiescence before returning is what makes the 'env transmute in
        // `spawn` sound — even when `f` itself panicked.
        help_until_quiescent(&shared);
        shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = shared.lock_injector();
            shared.available.notify_all();
        }
        result
        // std::thread::scope joins the workers here.
    });
    let value = match result {
        Ok(value) => value,
        Err(payload) => resume_unwind(payload),
    };
    let task_panic = shared
        .panic
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take();
    if let Some(payload) = task_panic {
        resume_unwind(payload);
    }
    value
}

/// Runs a future to completion on the calling thread, parking on a condvar
/// between polls.
///
/// Usable from inside a [`scope`] closure (the workers keep other tasks
/// moving while this thread sleeps) or standalone in tests.
pub fn block_on<F: Future>(future: F) -> F::Output {
    struct Park {
        woken: Mutex<bool>,
        cv: Condvar,
    }
    impl Wake for Park {
        fn wake(self: Arc<Self>) {
            self.wake_by_ref();
        }
        fn wake_by_ref(self: &Arc<Self>) {
            *self.woken.lock().unwrap_or_else(|e| e.into_inner()) = true;
            self.cv.notify_one();
        }
    }

    let park = Arc::new(Park {
        woken: Mutex::new(false),
        cv: Condvar::new(),
    });
    let waker = Waker::from(park.clone());
    let mut cx = Context::from_waker(&waker);
    let mut future = std::pin::pin!(future);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(value) => return value,
            Poll::Pending => {
                let mut woken = park.woken.lock().unwrap_or_else(|e| e.into_inner());
                while !*woken {
                    woken = park.cv.wait(woken).unwrap_or_else(|e| e.into_inner());
                }
                *woken = false;
            }
        }
    }
}

/// Future returned by [`yield_now`].
#[derive(Debug, Default)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// Cooperatively yields to other tasks: returns `Pending` once, re-queuing
/// the task at the back of the injector.
///
/// This is the service layer's substitute for `thread::sleep`-style
/// backoff — reclaimers and long-running connections yield between bursts
/// so ten thousand tasks share a handful of workers fairly.
pub fn yield_now() -> YieldNow {
    YieldNow::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_tens_of_thousands_of_tasks() {
        let sum = AtomicU64::new(0);
        scope(4, |sp| {
            for i in 0..20_000u64 {
                let sum = &sum;
                sp.spawn(async move {
                    yield_now().await;
                    sum.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 19_999 * 20_000 / 2);
    }

    #[test]
    fn tasks_borrow_the_callers_stack() {
        let mut counter = 0u64;
        {
            let cell = AtomicU64::new(0);
            scope(2, |sp| {
                for _ in 0..64 {
                    sp.spawn(async {
                        cell.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            counter += cell.load(Ordering::Relaxed);
        }
        assert_eq!(counter, 64);
    }

    #[test]
    fn block_on_drives_cross_task_wakeups() {
        let (tx, rx) = crate::sync::oneshot();
        let got = scope(2, |sp| {
            sp.spawn(async move {
                yield_now().await;
                tx.send(42u64);
            });
            block_on(rx)
        });
        assert_eq!(got, Some(42));
    }

    #[test]
    fn task_panic_is_reraised_after_quiescence() {
        let finished = AtomicU64::new(0);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            scope(2, |sp| {
                sp.spawn(async {
                    panic!("task boom");
                });
                for _ in 0..32 {
                    let finished = &finished;
                    sp.spawn(async move {
                        yield_now().await;
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(outcome.is_err(), "panic must propagate out of scope");
        assert_eq!(
            finished.load(Ordering::Relaxed),
            32,
            "sibling tasks still ran to completion"
        );
    }

    #[test]
    fn yield_now_interleaves_tasks() {
        // Two tasks ping-ponging a counter: with a single worker the only
        // way both finish is if yield_now really re-queues.
        let turns = AtomicU64::new(0);
        scope(1, |sp| {
            for _ in 0..2 {
                let turns = &turns;
                sp.spawn(async move {
                    for _ in 0..100 {
                        turns.fetch_add(1, Ordering::Relaxed);
                        yield_now().await;
                    }
                });
            }
        });
        assert_eq!(turns.load(Ordering::Relaxed), 200);
    }
}
