//! Task-scoped SMR guards: the async analogue of a thread-local handle.
//!
//! A [`TaskGuard`] checks a [`PooledHandle`] out of a [`HandlePool`]
//! **asynchronously** — an oversubscribed task awaits availability instead
//! of blocking its worker thread — and returns it when dropped. Two
//! check-in flavours exist:
//!
//! * [`TaskGuard::acquire`] returns the handle the classic way: the drop
//!   flushes the handle's deferred retire list inline before parking it.
//! * [`TaskGuard::acquire_deferred`] parks the handle **dirty** (retire
//!   list unflushed) and hands a [`ReclaimTicket`] to a background
//!   reclaimer via its shard's [`DrainQueue`], taking the flush entirely
//!   off the connection's critical path. If the queue is full or closed
//!   the guard flushes one dirty handle inline instead, preserving the
//!   one-ticket-per-dirty-handle invariant the reclaimer protocol (and the
//!   `interleave::reclaimer` model check) is built on.
//!
//! ```text
//!   TaskGuard::acquire_deferred(pool, queue).await
//!        │  (awaits pool.check_out(): FIFO waker queue)
//!        ▼
//!   ┌─ task owns PooledHandle ── enter/op/leave bursts ──┐
//!   └────────────────────────────────────────────────────┘
//!        │ drop
//!        ├── check_in_dirty()  ──► pool.dirty list
//!        └── try_push(ticket)  ──► reclaimer: flush_one_dirty()
//!                 └─ Full/Closed ──► flush_one_dirty() inline
//! ```

use std::ops::{Deref, DerefMut};

use smr_core::{HandlePool, PooledHandle, Smr};

use crate::queue::DrainQueue;
use crate::reclaimer::ReclaimTicket;

/// A pooled SMR handle scoped to one async task (or one poll burst).
pub struct TaskGuard<'p, 'd, T: Send + 'static, S: Smr<T>> {
    pool: &'p HandlePool<'d, T, S>,
    /// `None` only transiently inside `drop`.
    handle: Option<PooledHandle<'p, 'd, T, S>>,
    /// Deferred-flush hand-off; `None` means flush inline on drop.
    reclaim: Option<&'p DrainQueue<ReclaimTicket>>,
}

impl<T: Send + 'static, S: Smr<T>> std::fmt::Debug for TaskGuard<'_, '_, T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskGuard")
            .field("scheme", &S::name())
            .field("deferred", &self.reclaim.is_some())
            .finish()
    }
}

impl<'p, 'd, T: Send + 'static, S: Smr<T>> TaskGuard<'p, 'd, T, S> {
    /// Awaits a handle; the drop check-in flushes inline.
    pub async fn acquire(pool: &'p HandlePool<'d, T, S>) -> TaskGuard<'p, 'd, T, S> {
        let handle = pool.check_out().await;
        TaskGuard {
            pool,
            handle: Some(handle),
            reclaim: None,
        }
    }

    /// Awaits a handle; the drop parks it dirty and tickets `queue`'s
    /// reclaimer to flush it off the hot path.
    pub async fn acquire_deferred(
        pool: &'p HandlePool<'d, T, S>,
        queue: &'p DrainQueue<ReclaimTicket>,
    ) -> TaskGuard<'p, 'd, T, S> {
        let handle = pool.check_out().await;
        TaskGuard {
            pool,
            handle: Some(handle),
            reclaim: Some(queue),
        }
    }

    /// The pool this guard's handle returns to.
    pub fn pool(&self) -> &'p HandlePool<'d, T, S> {
        self.pool
    }
}

impl<'d, T: Send + 'static, S: Smr<T>> Deref for TaskGuard<'_, 'd, T, S> {
    type Target = S::Handle<'d>;

    fn deref(&self) -> &Self::Target {
        self.handle.as_ref().expect("guard holds a handle until drop")
    }
}

impl<T: Send + 'static, S: Smr<T>> DerefMut for TaskGuard<'_, '_, T, S> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        self.handle.as_mut().expect("guard holds a handle until drop")
    }
}

impl<T: Send + 'static, S: Smr<T>> Drop for TaskGuard<'_, '_, T, S> {
    fn drop(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        match self.reclaim {
            None => drop(handle), // PooledHandle drop: flush + park clean
            Some(queue) => {
                handle.check_in_dirty();
                if queue.try_push(ReclaimTicket).is_err() {
                    // Reclaimer behind (Full) or shutting down (Closed):
                    // do its unit of work inline so no dirty handle is
                    // left without a ticket.
                    self.pool.flush_one_dirty();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{block_on, scope, yield_now};
    use smr_baselines::Ebr;
    use smr_core::{SmrConfig, SmrHandle};

    fn config() -> SmrConfig {
        SmrConfig {
            slots: 4,
            batch_min: 4,
            max_threads: 4,
            ..SmrConfig::default()
        }
    }

    #[test]
    fn guard_brackets_ops_and_flushes_inline() {
        let domain: Ebr<u64> = Ebr::with_config(config());
        let pool = HandlePool::new(&domain, 2);
        block_on(async {
            let mut guard = TaskGuard::acquire(&pool).await;
            guard.enter();
            let node = guard.alloc(5);
            // SAFETY: the node was just allocated and never published.
            unsafe { guard.retire(node) };
            guard.leave();
        });
        assert_eq!(pool.dirty(), 0, "inline check-in flushes");
        assert_eq!(pool.checked_out(), 0);
    }

    #[test]
    fn deferred_guard_parks_dirty_and_tickets() {
        let domain: Ebr<u64> = Ebr::with_config(config());
        let pool = HandlePool::new(&domain, 2);
        let queue = DrainQueue::new(4);
        block_on(async {
            let mut guard = TaskGuard::acquire_deferred(&pool, &queue).await;
            guard.enter();
            let node = guard.alloc(5);
            // SAFETY: the node was just allocated and never published.
            unsafe { guard.retire(node) };
            guard.leave();
        });
        assert_eq!(pool.dirty(), 1, "flush deferred to the reclaimer");
        assert_eq!(queue.len(), 1, "one ticket per dirty handle");
        assert!(pool.flush_one_dirty());
    }

    #[test]
    fn full_queue_falls_back_to_inline_flush() {
        let domain: Ebr<u64> = Ebr::with_config(config());
        let pool = HandlePool::new(&domain, 2);
        let queue = DrainQueue::new(1);
        queue.try_push(ReclaimTicket).unwrap(); // pre-fill to capacity
        block_on(async {
            let _guard = TaskGuard::acquire_deferred(&pool, &queue).await;
        });
        assert_eq!(pool.dirty(), 0, "fallback flushed inline");
        assert_eq!(queue.len(), 1, "no ticket added for the flushed handle");
    }

    #[test]
    fn guards_oversubscribe_across_tasks() {
        let domain: Ebr<u64> = Ebr::with_config(config());
        let pool = HandlePool::new(&domain, 2);
        let ops = std::sync::atomic::AtomicU64::new(0);
        scope(2, |sp| {
            for _ in 0..32 {
                let pool = &pool;
                let ops = &ops;
                sp.spawn(async move {
                    let mut guard = TaskGuard::acquire(pool).await;
                    guard.enter();
                    guard.leave();
                    ops.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    drop(guard);
                    yield_now().await;
                });
            }
        });
        assert_eq!(ops.load(std::sync::atomic::Ordering::Relaxed), 32);
        assert!(pool.issued() <= 2);
    }
}
