//! Integration coverage for the async checkout path on the real executor:
//! heavy oversubscription with exact drop accounting, and cancellation of
//! a checkout future mid-await without leaking pool capacity.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::task::{Context, Poll};

use smr_async::{scope, yield_now, TaskGuard};
use smr_baselines::Ebr;
use smr_core::{HandlePool, Smr, SmrConfig, SmrHandle};
use smr_testkit::drop_tracker::{DropRegistry, Tracked};

fn config() -> SmrConfig {
    SmrConfig {
        slots: 4,
        batch_min: 2,
        max_threads: 4,
        ..SmrConfig::default()
    }
}

/// 64 tasks funnel through a 2-slot pool on a registry-capped scheme; every
/// allocation must be balanced by a drop once the domain goes away.
#[test]
fn sixty_four_tasks_over_two_slots_balance_exactly() {
    const TASKS: u64 = 64;
    const OPS_PER_TASK: u64 = 4;
    let registry = DropRegistry::new();
    {
        let domain: Ebr<Tracked<u64>> = Ebr::with_config(config());
        let pool = HandlePool::new(&domain, 2);
        scope(2, |sp| {
            for task in 0..TASKS {
                let pool = &pool;
                let registry = &registry;
                sp.spawn(async move {
                    for op in 0..OPS_PER_TASK {
                        let mut guard = TaskGuard::acquire(pool).await;
                        guard.enter();
                        let node = guard.alloc(registry.track(task * OPS_PER_TASK + op));
                        // SAFETY: freshly allocated and never published, so
                        // no other task can hold a reference.
                        unsafe { guard.retire(node) };
                        guard.leave();
                        drop(guard);
                        yield_now().await;
                    }
                });
            }
        });
        assert_eq!(pool.checked_out(), 0, "every guard returned its handle");
        assert!(pool.issued() <= 2, "pool cap exceeded: {}", pool.issued());
        assert_eq!(registry.created(), TASKS * OPS_PER_TASK);
    }
    registry.assert_quiescent();
    assert!(!registry.double_drop_detected());
}

/// Polls the wrapped future at most `polls` times with the task's real
/// waker, then resolves to `None`, dropping it — an in-executor stand-in
/// for cancellation (e.g. a timeout racing a checkout).
struct PollLimited<F> {
    fut: Option<F>,
    polls: usize,
}

impl<F: Future + Unpin> Future for PollLimited<F> {
    type Output = Option<F::Output>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        let fut = this.fut.as_mut().expect("polled after completion");
        match Pin::new(fut).poll(cx) {
            Poll::Ready(v) => Poll::Ready(Some(v)),
            Poll::Pending if this.polls <= 1 => {
                this.fut = None; // cancel: drop the future mid-await
                Poll::Ready(None)
            }
            Poll::Pending => {
                this.polls -= 1;
                Poll::Pending
            }
        }
    }
}

/// A checkout future dropped mid-await must deregister its waiter and pass
/// the availability baton on: the handle the cancelled task was queued for
/// goes to the next awaiting task, and no capacity is leaked.
#[test]
fn cancelled_checkout_releases_its_slot_to_the_next_waiter() {
    let domain: Ebr<u64> = Ebr::with_config(config());
    let pool = HandlePool::new(&domain, 1);
    let holder_has_handle = AtomicBool::new(false);
    let cancelled = AtomicBool::new(false);
    let successor_done = AtomicBool::new(false);

    scope(1, |sp| {
        let pool = &pool;
        let holder_has_handle = &holder_has_handle;
        let cancelled = &cancelled;
        let successor_done = &successor_done;

        // Holds the single handle until the cancellation has happened, so
        // the other two tasks genuinely queue behind it.
        sp.spawn(async move {
            let guard = TaskGuard::acquire(pool).await;
            holder_has_handle.store(true, Ordering::SeqCst);
            while !cancelled.load(Ordering::SeqCst) {
                yield_now().await;
            }
            drop(guard);
        });

        // Queues for the handle, then abandons the wait after one poll.
        sp.spawn(async move {
            while !holder_has_handle.load(Ordering::SeqCst) {
                yield_now().await;
            }
            let outcome = PollLimited {
                fut: Some(pool.check_out()),
                polls: 1,
            }
            .await;
            assert!(outcome.is_none(), "pool is exhausted; checkout must pend");
            cancelled.store(true, Ordering::SeqCst);
        });

        // Queues behind the cancelled waiter; the baton must reach it.
        sp.spawn(async move {
            while !holder_has_handle.load(Ordering::SeqCst) {
                yield_now().await;
            }
            let mut guard = TaskGuard::acquire(pool).await;
            guard.enter();
            guard.leave();
            successor_done.store(true, Ordering::SeqCst);
        });
    });

    assert!(successor_done.load(Ordering::SeqCst), "successor starved");
    assert_eq!(pool.checked_out(), 0, "cancellation leaked pool capacity");
    assert_eq!(pool.issued(), 1, "cancellation must not mint extra handles");
}
