//! Property-based exploration: *arbitrary* well-formed programs (not just
//! the hand-picked scenarios) must uphold the model's safety invariants
//! under randomized schedules.
//!
//! A "well-formed" program is any sequence of operations where `retire` and
//! `trim` happen inside an `enter`/`leave` window — exactly the API
//! contract the paper's Figure 1a imposes on clients. The property is that
//! no interleaving of well-formed programs produces a use-after-free,
//! double-free, leak, lost adjustment or non-quiescent head.

use interleave::model::{Fault, Op, ThreadProgram, Variant};
use interleave::scenarios::custom;
use interleave::Explorer;
use proptest::collection::vec;
use proptest::prelude::*;

/// One enter..leave window with up to three retires/trims inside.
fn window(slots: usize) -> impl Strategy<Value = ThreadProgram> {
    (
        0..slots,
        vec(prop_oneof![2 => Just(Op::Retire), 1 => Just(Op::Trim)], 0..3),
    )
        .prop_map(|(slot, inner)| {
            let mut p = vec![Op::Enter(slot)];
            p.extend(inner);
            p.push(Op::Leave);
            p
        })
}

/// A well-formed program: 1–3 windows back to back.
fn program(slots: usize) -> impl Strategy<Value = ThreadProgram> {
    vec(window(slots), 1..=3).prop_map(|ws| ws.into_iter().flatten().collect())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// Hyaline (Figure 3), k ∈ {1, 2, 4}, 2–3 threads, random programs,
    /// 200 random schedules each.
    #[test]
    fn hyaline_random_programs_are_safe(
        k_exp in 0usize..3,
        programs in vec(program(4), 2..=3),
        seed in any::<u64>(),
    ) {
        let slots = 1usize << k_exp;
        // Clamp slots referenced by the generated programs into range.
        let programs: Vec<ThreadProgram> = programs
            .into_iter()
            .map(|p| {
                p.into_iter()
                    .map(|op| match op {
                        Op::Enter(s) => Op::Enter(s % slots),
                        other => other,
                    })
                    .collect()
            })
            .collect();
        let scenario = custom(slots, Variant::Hyaline, Fault::None, programs);
        let outcome = Explorer::random(200, seed).run(&scenario);
        prop_assert!(
            outcome.violation.is_none(),
            "violation: {:?}",
            outcome.violation
        );
    }

    /// Hyaline-1 (Figure 4): one dedicated slot per thread.
    #[test]
    fn hyaline1_random_programs_are_safe(
        threads in 2usize..=3,
        window_counts in vec(1usize..=3, 3),
        retires in vec(0usize..=2, 9),
        seed in any::<u64>(),
    ) {
        let programs: Vec<ThreadProgram> = (0..threads)
            .map(|t| {
                let mut p = Vec::new();
                for w in 0..window_counts[t] {
                    p.push(Op::Enter(t));
                    for _ in 0..retires[t * 3 + w] {
                        p.push(Op::Retire);
                    }
                    p.push(Op::Leave);
                }
                p
            })
            .collect();
        let scenario = custom(threads, Variant::Hyaline1, Fault::None, programs);
        let outcome = Explorer::random(200, seed).run(&scenario);
        prop_assert!(
            outcome.violation.is_none(),
            "violation: {:?}",
            outcome.violation
        );
    }

    /// Hyaline-S (Figure 5): random programs with `Deref`s sprinkled in.
    #[test]
    fn hyaline_s_random_programs_are_safe(
        k_exp in 0usize..3,
        programs in vec(program(4), 2..=3),
        seed in any::<u64>(),
    ) {
        let slots = 1usize << k_exp;
        let programs: Vec<ThreadProgram> = programs
            .into_iter()
            .map(|p| {
                p.into_iter()
                    .flat_map(|op| match op {
                        Op::Enter(s) => vec![Op::Enter(s % slots), Op::Deref],
                        other => vec![other],
                    })
                    .collect()
            })
            .collect();
        let scenario = custom(slots, Variant::HyalineS, Fault::None, programs);
        let outcome = Explorer::random(200, seed).run(&scenario);
        prop_assert!(
            outcome.violation.is_none(),
            "violation: {:?}",
            outcome.violation
        );
    }

    /// Hyaline-S with a randomly placed stalled reader: robustness must
    /// hold in every sampled interleaving — unreclaimed batches may exist
    /// only when pinned by the stalled slot's (era-covered) insertions.
    #[test]
    fn hyaline_s_random_stall_is_robust(
        churn in vec(program(2), 1..=2),
        stall_derefs in 0usize..=1,
        seed in any::<u64>(),
    ) {
        let mut stall_prog = vec![Op::Enter(0)];
        for _ in 0..stall_derefs {
            stall_prog.push(Op::Deref);
        }
        stall_prog.push(Op::Stall);
        let mut programs = vec![stall_prog];
        programs.extend(churn.into_iter().map(|p| {
            p.into_iter()
                .flat_map(|op| match op {
                    Op::Enter(s) => vec![Op::Enter(s % 2), Op::Deref],
                    Op::Trim => vec![],  // keep the stall scenario minimal
                    other => vec![other],
                })
                .collect::<ThreadProgram>()
        }));
        let scenario = custom(2, Variant::HyalineS, Fault::None, programs);
        let outcome = Explorer::random(200, seed).run(&scenario);
        prop_assert!(
            outcome.violation.is_none(),
            "violation: {:?}",
            outcome.violation
        );
    }

    /// Injected faults must be *findable* from random programs too, as long
    /// as the program actually exercises the broken path (an empty slot at
    /// retire time for `SkipEmptyAdjust`). Rather than asserting every
    /// sample finds it (schedules may dodge the bug), assert the stronger
    /// exhaustive search does.
    #[test]
    fn skip_empty_adjust_found_from_random_shapes(
        retires in 1usize..=2,
        seed in any::<u64>(),
    ) {
        let _ = seed;
        // One thread through slot 0 of a k=2 domain: slot 1 is always
        // empty, so every batch depends on the empty-slot adjustment.
        let mut p = Vec::new();
        for _ in 0..retires {
            p.extend([Op::Enter(0), Op::Retire, Op::Leave]);
        }
        let scenario = custom(2, Variant::Hyaline, Fault::SkipEmptyAdjust, vec![p]);
        let outcome = Explorer::exhaustive(100_000).run(&scenario);
        prop_assert!(outcome.violation.is_some(), "fault not detected");
    }
}

/// Deterministic regression companion to the proptest: the documented
/// counterexample shape for the missing-detach fault.
#[test]
fn missing_detach_is_found_in_single_thread_program() {
    let scenario = custom(
        1,
        Variant::Hyaline,
        Fault::NoDetachOnLastLeave,
        vec![vec![Op::Enter(0), Op::Retire, Op::Leave]],
    );
    let outcome = Explorer::exhaustive(10_000).run(&scenario);
    let v = outcome.violation.expect("lost detach must be detected");
    assert!(
        v.message.contains("not quiescent") || v.message.contains("leak"),
        "unexpected violation: {}",
        v.message
    );
}
