//! Exhaustive interleaving exploration of the node-recycling free list
//! (`smr_core::recycle::NodePool`): magazine spills racing refills.
//!
//! The pool's shared state is a Treiber-style free list with exactly two
//! operations — `push_block` (CAS-loop prepend of an exclusively-owned
//! chain) and `take_all` (one unconditional `swap` of the head to null) —
//! and its safety argument is an *ABA argument by construction*:
//!
//! > The classic Treiber **pop-one** (read `head`, read `head->next`, CAS
//! > `head → next`) is unsafe here because a node popped by another thread
//! > can be handed out, be in active use, and be pushed back while the
//! > first thread's CAS still compares equal — the CAS then installs the
//! > *stale* `next` snapshot, splicing a node that is no longer free into
//! > the free list. `take_all` has no such window: the moment the `swap`
//! > returns, the entire chain is unreachable from the shared head, so the
//! > detaching thread walks link words of memory it exclusively owns, and
//! > no CAS ever validates against state another thread could have
//! > recycled in the meantime. `push_block` only ever *writes* the tail
//! > link of a chain it owns and never dereferences nodes it observed
//! > through the shared head — a stale comparand costs a retry, never a
//! > corrupt splice.
//!
//! This module checks that argument mechanically. Every transition is one
//! atomic action under sequential consistency (one head load, one swap,
//! one CAS attempt); link-word writes to *unpublished* memory are folded
//! into the publishing CAS, which is sound precisely because no other
//! thread can observe them earlier — the fold is itself part of the
//! ownership argument. The explorer runs every schedule and checks, after
//! each successful head mutation and at quiescence:
//!
//! * **list integrity** — the chain reachable from the shared head is
//!   duplicate-free and contains only nodes whose model state is *in the
//!   list* (a spliced-in magazine or in-use node is flagged immediately);
//! * **exclusive hand-out** — a node entering a magazine must come from
//!   the free list (double hand-out);
//! * **conservation** — at quiescence every node is exactly one of:
//!   reachable in the list, parked in a magazine, or held in use; a node
//!   marked free but unreachable is a lost node.
//!
//! The fault-injected [`RecycleOp::PopOne`] mutant implements the
//! forbidden pop — snapshot `head` and `head->next` in two steps, then CAS
//! — and [`scenario::pop_one_race`](RecycleScenario::pop_one_race) drives
//! it against a concurrent refill/spill pair; the explorer must find the
//! splice. The approximate partition `len` counter is *not* modelled: it
//! only bounds capacity (a saturating counter that can at worst over- or
//! under-admit a spill) and never feeds the ownership protocol.

use std::fmt;

/// Where a node currently lives, from the model's omniscient view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Place {
    /// Linked into the shared free list (must be reachable from `head`).
    List,
    /// Parked in the magazine of the given task.
    Magazine(usize),
    /// Handed out by `alloc` and currently in use by the given task.
    InUse(usize),
    /// Part of a detached or not-yet-published chain owned by the task
    /// (between a `take_all`/magazine pop and the publishing CAS).
    Pending(usize),
}

/// One high-level pool operation; compound operations expand into one
/// atomic action per explorer step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecycleOp {
    /// `take_all` refill: one `swap` detaches the whole partition chain,
    /// which the task keeps wholesale (magazine plus private reserve — one
    /// ownership class, modelled as the magazine). Nothing is pushed back:
    /// the real refill consumes the detached chain lazily rather than
    /// walking it up front to return a remainder.
    Refill,
    /// Spill `count` nodes from this task's magazine back to the shared
    /// list as one `push_block` (read head, then one CAS per attempt).
    Spill {
        /// Nodes popped off the magazine into the published chain.
        count: usize,
    },
    /// Pop one node from the magazine and hand it out (local action).
    Alloc,
    /// Return the most recently allocated node to the magazine (local).
    Dispose,
    /// **Fault injection**: the forbidden Treiber pop-one — read `head`,
    /// read `head->next` (a node this task does *not* own), CAS
    /// `head → next`. Exists to prove the explorer catches the ABA splice;
    /// the real pool deliberately has no such operation.
    PopOne,
}

/// Micro-state of a task inside a compound operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Micro {
    /// Between operations.
    Idle,
    /// `push_block` in flight: chain is built and owned, next step reads
    /// the shared head (None) or attempts the CAS (Some(observed)).
    Push {
        chain_head: usize,
        chain_tail: usize,
        observed: Option<usize>,
    },
    /// Faulty pop-one in flight: head snapshot, then next snapshot.
    Pop {
        observed: usize,
        next: Option<usize>,
    },
}

/// A scenario: an initial free-list population plus one program per task.
#[derive(Debug, Clone)]
pub struct RecycleScenario {
    /// Nodes initially chained into the shared list (ids `1..=nodes`).
    pub nodes: usize,
    /// Per-task operation sequences.
    pub programs: Vec<Vec<RecycleOp>>,
    /// Human-readable description.
    pub name: String,
}

impl RecycleScenario {
    /// Two tasks racing the correct protocol over a shared list of
    /// `nodes`: each refills, cycles a node through alloc/dispose, and
    /// spills everything back. Exercises swap-vs-push and push-vs-push
    /// races with node reuse in between.
    pub fn spill_refill(nodes: usize) -> Self {
        let program = vec![
            RecycleOp::Refill,
            RecycleOp::Alloc,
            RecycleOp::Dispose,
            RecycleOp::Spill { count: 1 },
        ];
        Self {
            nodes,
            programs: vec![program.clone(), program],
            name: format!("recycle_spill_refill(nodes={nodes})"),
        }
    }

    /// The ABA trap: task 0 runs the forbidden pop-one while task 1
    /// detaches the whole list, takes the second node into active use
    /// (magazines are LIFO, so the alloc hands out `n2`), and pushes the
    /// first node back. In the interleaving where task 0 snapshots
    /// `head = n1, next = n2` before the detach and CASes after the
    /// push-back, the CAS succeeds — head is `n1` again — and splices
    /// `n2`, a node currently in use, into the free list. The explorer
    /// must find it.
    pub fn pop_one_race() -> Self {
        Self {
            nodes: 2,
            programs: vec![
                vec![RecycleOp::PopOne],
                vec![
                    RecycleOp::Refill,
                    RecycleOp::Alloc,
                    RecycleOp::Spill { count: 1 },
                ],
            ],
            name: "recycle_pop_one_race".into(),
        }
    }
}

/// A safety violation found under some schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecycleViolation {
    /// What went wrong.
    pub message: String,
    /// The task indices scheduled, in order, up to the violating step.
    pub schedule: Vec<usize>,
}

/// Result of exploring a [`RecycleScenario`].
#[derive(Debug, Clone)]
pub struct RecycleOutcome {
    /// Complete schedules explored.
    pub schedules: u64,
    /// First violation encountered, if any.
    pub violation: Option<RecycleViolation>,
    /// Whether the whole tree fit in the budget.
    pub complete: bool,
}

impl fmt::Display for RecycleOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.violation {
            Some(v) => write!(f, "VIOLATION after {} schedules: {}", self.schedules, v.message),
            None => write!(f, "ok: {} schedules", self.schedules),
        }
    }
}

#[derive(Clone)]
struct RecState {
    /// Shared list head: node id, 0 = null.
    head: usize,
    /// `link[id - 1]`: next-free pointer stored in the node's header word.
    link: Vec<usize>,
    /// `place[id - 1]`: omniscient ownership state of each node.
    place: Vec<Place>,
    /// Per-task program counter, micro-state, magazine, and in-use stack.
    pc: Vec<usize>,
    micro: Vec<Micro>,
    mags: Vec<Vec<usize>>,
    in_use: Vec<Vec<usize>>,
}

impl RecState {
    fn initial(scenario: &RecycleScenario) -> Self {
        let tasks = scenario.programs.len();
        Self {
            head: if scenario.nodes == 0 { 0 } else { 1 },
            // n1 → n2 → … → nN → null.
            link: (1..=scenario.nodes)
                .map(|id| if id == scenario.nodes { 0 } else { id + 1 })
                .collect(),
            place: vec![Place::List; scenario.nodes],
            pc: vec![0; tasks],
            micro: vec![Micro::Idle; tasks],
            mags: vec![Vec::new(); tasks],
            in_use: vec![Vec::new(); tasks],
        }
    }

    /// Walks the shared list and checks integrity: no duplicates (a cycle
    /// shows up as one) and every reachable node is in [`Place::List`].
    fn check_list(&self, schedule: &[usize]) -> Result<(), RecycleViolation> {
        let fail = |message: String| RecycleViolation {
            message,
            schedule: schedule.to_vec(),
        };
        let mut seen = vec![false; self.link.len()];
        let mut cur = self.head;
        while cur != 0 {
            if seen[cur - 1] {
                return Err(fail(format!(
                    "free list corrupt: node {cur} reachable twice (cycle or splice)"
                )));
            }
            seen[cur - 1] = true;
            if self.place[cur - 1] != Place::List {
                return Err(fail(format!(
                    "free list corrupt: node {cur} reachable from head while {:?} — \
                     a stale next-snapshot was spliced in",
                    self.place[cur - 1]
                )));
            }
            cur = self.link[cur - 1];
        }
        Ok(())
    }
}

/// Explores every interleaving of `scenario` (up to `budget` complete
/// schedules), checking the free-list invariants after every head
/// mutation and conservation at quiescence.
pub fn explore(scenario: &RecycleScenario, budget: u64) -> RecycleOutcome {
    let mut outcome = RecycleOutcome {
        schedules: 0,
        violation: None,
        complete: true,
    };
    let mut schedule = Vec::new();
    dfs(
        scenario,
        RecState::initial(scenario),
        &mut schedule,
        &mut outcome,
        budget,
    );
    outcome
}

fn enabled(scenario: &RecycleScenario, state: &RecState, task: usize) -> bool {
    state.micro[task] != Micro::Idle || state.pc[task] < scenario.programs[task].len()
}

/// Executes one atomic action of `task`. Compound operations advance their
/// [`Micro`] state by exactly one shared access per call.
fn step(
    scenario: &RecycleScenario,
    state: &mut RecState,
    task: usize,
    schedule: &[usize],
) -> Result<(), RecycleViolation> {
    let fail = |message: String| RecycleViolation {
        message,
        schedule: schedule.to_vec(),
    };
    match state.micro[task] {
        Micro::Idle => begin(scenario, state, task, schedule),
        Micro::Push {
            chain_head,
            chain_tail,
            observed,
        } => match observed {
            // Atomic action: load the shared head as the CAS comparand.
            None => {
                state.micro[task] = Micro::Push {
                    chain_head,
                    chain_tail,
                    observed: Some(state.head),
                };
                Ok(())
            }
            // Atomic action: one CAS attempt. The tail-link store is folded
            // in: it targets unpublished memory this task owns, so no other
            // thread can observe it before the CAS succeeds (see module
            // docs — this fold *is* the ownership argument).
            Some(expected) => {
                if state.head == expected {
                    state.link[chain_tail - 1] = expected;
                    state.head = chain_head;
                    let mut cur = chain_head;
                    loop {
                        state.place[cur - 1] = Place::List;
                        if cur == chain_tail {
                            break;
                        }
                        cur = state.link[cur - 1];
                    }
                    state.micro[task] = Micro::Idle;
                    state.pc[task] += 1;
                    state.check_list(schedule)
                } else {
                    // CAS failure returns the freshly observed head.
                    state.micro[task] = Micro::Push {
                        chain_head,
                        chain_tail,
                        observed: Some(state.head),
                    };
                    Ok(())
                }
            }
        },
        Micro::Pop { observed, next } => match next {
            // Atomic action: read `observed->next` — memory this task does
            // NOT own. The model allows the stale read (that is the bug
            // under test); the splice it enables is caught at the CAS.
            None => {
                state.micro[task] = Micro::Pop {
                    observed,
                    next: Some(state.link[observed - 1]),
                };
                Ok(())
            }
            // Atomic action: one CAS attempt against the stale snapshots.
            Some(nx) => {
                if state.head == observed {
                    if state.place[observed - 1] != Place::List {
                        return Err(fail(format!(
                            "pop-one handed out node {observed} while {:?} (double hand-out)",
                            state.place[observed - 1]
                        )));
                    }
                    state.head = nx;
                    state.place[observed - 1] = Place::Magazine(task);
                    state.mags[task].push(observed);
                    state.micro[task] = Micro::Idle;
                    state.pc[task] += 1;
                    state.check_list(schedule)
                } else if state.head == 0 {
                    // Restarted against an empty list: pop misses.
                    state.micro[task] = Micro::Idle;
                    state.pc[task] += 1;
                    Ok(())
                } else {
                    state.micro[task] = Micro::Pop {
                        observed: state.head,
                        next: None,
                    };
                    Ok(())
                }
            }
        },
    }
}

/// Starts the operation at `pc`, performing its first atomic action.
fn begin(
    scenario: &RecycleScenario,
    state: &mut RecState,
    task: usize,
    schedule: &[usize],
) -> Result<(), RecycleViolation> {
    let fail = |message: String| RecycleViolation {
        message,
        schedule: schedule.to_vec(),
    };
    match scenario.programs[task][state.pc[task]] {
        // Atomic action: `swap(head, 0)`. Everything the swap detaches is
        // exclusively owned from this instant — the model moves the whole
        // chain into the task's magazine within the same step, mirroring
        // the real refill's private reserve (same ownership class).
        RecycleOp::Refill => {
            let mut cur = state.head;
            state.head = 0;
            while cur != 0 {
                if state.place[cur - 1] != Place::List {
                    return Err(fail(format!(
                        "refill detached node {cur} while {:?} (double hand-out)",
                        state.place[cur - 1]
                    )));
                }
                state.place[cur - 1] = Place::Magazine(task);
                state.mags[task].push(cur);
                cur = state.link[cur - 1];
            }
            state.pc[task] += 1;
            Ok(())
        }
        // Local action: pop `count` magazine nodes and pre-link them into
        // the chain to publish. Link writes target owned memory; the first
        // shared access is the head read in the next step. Like the real
        // `spill_down`, a spill clamps to what the magazine holds and a
        // spill of nothing returns early.
        RecycleOp::Spill { count } => {
            let count = count.min(state.mags[task].len());
            if count == 0 {
                state.pc[task] += 1;
                return Ok(());
            }
            let mut chain_head = 0usize;
            let mut chain_tail = 0usize;
            for _ in 0..count {
                let id = state.mags[task].pop().expect("checked above");
                state.place[id - 1] = Place::Pending(task);
                state.link[id - 1] = chain_head;
                if chain_head == 0 {
                    chain_tail = id;
                }
                chain_head = id;
            }
            state.micro[task] = Micro::Push {
                chain_head,
                chain_tail,
                observed: None,
            };
            Ok(())
        }
        // Local action: magazine → in use. An empty magazine is a pool
        // miss: the real `alloc` falls back to the global allocator, so
        // the model mints a fresh node (which later disposes and spills
        // into the pool like any other — exactly the real flow).
        RecycleOp::Alloc => {
            let id = match state.mags[task].pop() {
                Some(id) => id,
                None => {
                    state.link.push(0);
                    state.place.push(Place::InUse(task));
                    state.link.len()
                }
            };
            state.place[id - 1] = Place::InUse(task);
            state.in_use[task].push(id);
            state.pc[task] += 1;
            Ok(())
        }
        // Local action: in use → magazine.
        RecycleOp::Dispose => {
            let id = state.in_use[task]
                .pop()
                .ok_or_else(|| fail(format!("scenario bug: task {task} disposes nothing")))?;
            state.place[id - 1] = Place::Magazine(task);
            state.mags[task].push(id);
            state.pc[task] += 1;
            Ok(())
        }
        // Atomic action: the forbidden pop's head snapshot.
        RecycleOp::PopOne => {
            if state.head == 0 {
                state.pc[task] += 1; // empty list: pop misses
                return Ok(());
            }
            state.micro[task] = Micro::Pop {
                observed: state.head,
                next: None,
            };
            Ok(())
        }
    }
}

/// Conservation at quiescence: every node is in exactly one place and
/// every free node is reachable.
fn check_quiescence(state: &RecState, schedule: &[usize]) -> Result<(), RecycleViolation> {
    let fail = |message: String| RecycleViolation {
        message,
        schedule: schedule.to_vec(),
    };
    state.check_list(schedule)?;
    let mut reachable = vec![false; state.link.len()];
    let mut cur = state.head;
    while cur != 0 {
        reachable[cur - 1] = true;
        cur = state.link[cur - 1];
    }
    for (i, place) in state.place.iter().enumerate() {
        match place {
            Place::List if !reachable[i] => {
                return Err(fail(format!("lost node {} (free but unreachable)", i + 1)));
            }
            Place::Pending(task) => {
                return Err(fail(format!(
                    "node {} still pending in task {task}'s unpublished chain",
                    i + 1
                )));
            }
            _ => {}
        }
    }
    Ok(())
}

fn dfs(
    scenario: &RecycleScenario,
    state: RecState,
    schedule: &mut Vec<usize>,
    outcome: &mut RecycleOutcome,
    budget: u64,
) {
    if outcome.violation.is_some() {
        return;
    }
    if outcome.schedules >= budget {
        outcome.complete = false;
        return;
    }
    let tasks: Vec<usize> = (0..scenario.programs.len())
        .filter(|&t| enabled(scenario, &state, t))
        .collect();
    if tasks.is_empty() {
        if let Err(v) = check_quiescence(&state, schedule) {
            outcome.violation = Some(v);
            return;
        }
        outcome.schedules += 1;
        return;
    }
    for t in tasks {
        let mut next = state.clone();
        schedule.push(t);
        match step(scenario, &mut next, t, schedule) {
            Ok(()) => dfs(scenario, next, schedule, outcome, budget),
            Err(v) => outcome.violation = Some(v),
        }
        schedule.pop();
        if outcome.violation.is_some() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_refill_all_interleavings_safe() {
        // The real protocol (take_all + push_block only): every schedule of
        // two tasks refilling, reusing, and spilling over a shared list
        // must keep the list intact and conserve every node.
        let outcome = explore(&RecycleScenario::spill_refill(3), 5_000_000);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.complete, "exploration must be exhaustive");
        assert!(outcome.schedules > 0);
    }

    #[test]
    fn empty_list_refills_miss_safely() {
        // Three tasks racing over a single-node list: most refills miss or
        // detach nothing; nothing may be lost or duplicated regardless.
        let scenario = RecycleScenario {
            nodes: 1,
            programs: vec![
                vec![RecycleOp::Refill, RecycleOp::Spill { count: 1 }],
                vec![RecycleOp::Refill, RecycleOp::Spill { count: 1 }],
                vec![RecycleOp::Refill, RecycleOp::Spill { count: 1 }],
            ],
            name: "recycle_contended_single_node".into(),
        };
        let outcome = explore(&scenario, 5_000_000);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.complete);
    }

    #[test]
    fn spill_refill_scenarios_conserve_under_spill_skew() {
        // Asymmetric spill sizes force multi-node block pushes to race both
        // a concurrent swap and a concurrent single-node push.
        let scenario = RecycleScenario {
            nodes: 4,
            programs: vec![
                vec![RecycleOp::Refill, RecycleOp::Spill { count: 1 }],
                vec![
                    RecycleOp::Refill,
                    RecycleOp::Alloc,
                    RecycleOp::Dispose,
                    RecycleOp::Spill { count: 2 },
                ],
            ],
            name: "recycle_spill_skew".into(),
        };
        let outcome = explore(&scenario, 5_000_000);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.complete);
    }

    #[test]
    fn pop_one_mutant_is_caught() {
        // The fault-injected Treiber pop-one must be caught: some schedule
        // lets the pop CAS succeed against stale snapshots and splice a
        // magazine-resident node into the free list.
        let outcome = explore(&RecycleScenario::pop_one_race(), 5_000_000);
        let violation = outcome.violation.expect("the ABA splice must be detected");
        assert!(
            violation.message.contains("free list corrupt")
                || violation.message.contains("double hand-out"),
            "unexpected violation: {}",
            violation.message
        );
    }

    #[test]
    fn pop_one_schedule_is_reproducible() {
        // The violating schedule must replay to the same violation —
        // determinism is what makes the explorer's counterexamples useful.
        let first = explore(&RecycleScenario::pop_one_race(), 5_000_000)
            .violation
            .expect("violation");
        let second = explore(&RecycleScenario::pop_one_race(), 5_000_000)
            .violation
            .expect("violation");
        assert_eq!(first, second);
    }
}
