//! Schedule exploration: exhaustive DFS over all interleavings, or seeded
//! random sampling when the tree is too large.
//!
//! Exploration is *replay-based*: every execution rebuilds the scenario from
//! scratch and follows a schedule prefix, so the model needs no undo
//! support — only deterministic construction. Lock-freedom of the modelled
//! algorithms bounds every execution (a CAS retry consumes a step only when
//! another thread made progress), and a generous step cap turns any
//! unexpected livelock into a reported violation instead of a hang.

use crate::model::HyalineModel;
use crate::scenarios::Scenario;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Hard per-execution step bound; exceeding it is reported as a violation
/// (the modelled algorithms are lock-free, so schedules terminate far below
/// this for the scenario sizes the explorer is meant for).
const STEP_CAP: usize = 100_000;

/// A safety violation found during exploration.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The thread chosen at each step (a replayable counterexample).
    pub schedule: Vec<usize>,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (after {} steps; schedule {:?})",
            self.message,
            self.schedule.len(),
            self.schedule
        )
    }
}

/// Result of an exploration run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Number of complete executions performed.
    pub executions: u64,
    /// Whether the entire schedule tree was explored (exhaustive mode only).
    pub complete: bool,
    /// The first violation found, if any.
    pub violation: Option<Violation>,
    /// The deepest execution seen, in steps.
    pub max_depth: usize,
}

enum Mode {
    Exhaustive { max_executions: u64 },
    Random { samples: u64, seed: u64 },
}

/// Explores the interleavings of a [`Scenario`].
///
/// # Example
///
/// ```
/// use interleave::{Explorer, scenarios};
///
/// let outcome = Explorer::random(500, 42)
///     .run(&scenarios::retire_churn(3, 1, 2));
/// assert!(outcome.violation.is_none());
/// assert_eq!(outcome.executions, 500);
/// ```
pub struct Explorer {
    mode: Mode,
}

impl Explorer {
    /// Depth-first exploration of every schedule, stopping (with
    /// `complete = false`) after `max_executions` executions.
    pub fn exhaustive(max_executions: u64) -> Self {
        Self {
            mode: Mode::Exhaustive { max_executions },
        }
    }

    /// `samples` uniformly random schedules from the given seed.
    pub fn random(samples: u64, seed: u64) -> Self {
        Self {
            mode: Mode::Random { samples, seed },
        }
    }

    /// Runs the exploration.
    pub fn run(&self, scenario: &Scenario) -> Outcome {
        match self.mode {
            Mode::Exhaustive { max_executions } => explore_exhaustive(scenario, max_executions),
            Mode::Random { samples, seed } => explore_random(scenario, samples, seed),
        }
    }
}

/// One replayed execution: follow `prefix` (indices into the enabled set),
/// then always take choice 0. Records `(choice_index, enabled_len)` pairs
/// and the chosen thread ids.
struct Replay {
    choices: Vec<(usize, usize)>,
    schedule: Vec<usize>,
    error: Option<String>,
}

fn replay(scenario: &Scenario, prefix: &[usize]) -> Replay {
    let mut model: HyalineModel = scenario.build();
    let mut choices = Vec::new();
    let mut schedule = Vec::new();
    loop {
        let width = model.enabled_count();
        if width == 0 {
            let error = model.finish().err();
            return Replay {
                choices,
                schedule,
                error,
            };
        }
        if schedule.len() >= STEP_CAP {
            return Replay {
                choices,
                schedule,
                error: Some(format!("step cap {STEP_CAP} exceeded (livelock?)")),
            };
        }
        let depth = choices.len();
        let idx = prefix.get(depth).copied().unwrap_or(0);
        debug_assert!(idx < width, "stale prefix index");
        let tid = model.nth_enabled(idx).expect("idx < width");
        choices.push((idx, width));
        schedule.push(tid);
        if let Err(message) = model.step(tid) {
            return Replay {
                choices,
                schedule,
                error: Some(message),
            };
        }
    }
}

fn explore_exhaustive(scenario: &Scenario, max_executions: u64) -> Outcome {
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions = 0;
    let mut max_depth = 0;
    loop {
        let run = replay(scenario, &prefix);
        executions += 1;
        max_depth = max_depth.max(run.schedule.len());
        if let Some(message) = run.error {
            return Outcome {
                executions,
                complete: false,
                violation: Some(Violation {
                    schedule: run.schedule,
                    message,
                }),
                max_depth,
            };
        }
        // Advance to the next schedule: bump the deepest choice that still
        // has unexplored siblings, truncating everything below it.
        let mut next = None;
        for (depth, &(idx, width)) in run.choices.iter().enumerate().rev() {
            if idx + 1 < width {
                next = Some((depth, idx + 1));
                break;
            }
        }
        match next {
            Some((depth, idx)) => {
                prefix.clear();
                prefix.extend(run.choices[..depth].iter().map(|&(i, _)| i));
                prefix.push(idx);
            }
            None => {
                return Outcome {
                    executions,
                    complete: true,
                    violation: None,
                    max_depth,
                };
            }
        }
        if executions >= max_executions {
            return Outcome {
                executions,
                complete: false,
                violation: None,
                max_depth,
            };
        }
    }
}

fn explore_random(scenario: &Scenario, samples: u64, seed: u64) -> Outcome {
    let mut executions = 0;
    let mut max_depth = 0;
    for sample in 0..samples {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(sample));
        let mut model: HyalineModel = scenario.build();
        let mut schedule = Vec::new();
        let error = loop {
            let width = model.enabled_count();
            if width == 0 {
                break model.finish().err();
            }
            if schedule.len() >= STEP_CAP {
                break Some(format!("step cap {STEP_CAP} exceeded (livelock?)"));
            }
            let tid = model
                .nth_enabled(rng.gen_range(0..width))
                .expect("idx < width");
            schedule.push(tid);
            if let Err(message) = model.step(tid) {
                break Some(message);
            }
        };
        executions += 1;
        max_depth = max_depth.max(schedule.len());
        if let Some(message) = error {
            return Outcome {
                executions,
                complete: false,
                violation: Some(Violation { schedule, message }),
                max_depth,
            };
        }
    }
    Outcome {
        executions,
        complete: false,
        violation: None,
        max_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Fault, Op, Variant};
    use crate::scenarios;

    #[test]
    fn exhaustive_counts_interleavings_of_independent_steps() {
        // Two threads, each a single `enter` on its own slot — every step is
        // one atomic action, so there are exactly C(2,1) = 2 schedules...
        // plus the leave steps. Use single-op programs via a scenario with
        // one enter+leave each: enter = 1 step, leave = 1 step (empty list,
        // merged load+CAS) -> 2 steps per thread -> C(4,2) = 6 schedules.
        let scenario = scenarios::custom(
            2,
            Variant::Hyaline,
            Fault::None,
            vec![
                vec![Op::Enter(0), Op::Leave],
                vec![Op::Enter(1), Op::Leave],
            ],
        );
        let outcome = Explorer::exhaustive(1_000).run(&scenario);
        assert!(outcome.complete);
        assert!(outcome.violation.is_none());
        assert_eq!(outcome.executions, 6, "C(4,2) interleavings");
    }

    #[test]
    fn exhaustive_is_deterministic() {
        let scenario = scenarios::retire_churn(2, 1, 1);
        let a = Explorer::exhaustive(1_000_000).run(&scenario);
        let b = Explorer::exhaustive(1_000_000).run(&scenario);
        assert_eq!(a.executions, b.executions);
        assert_eq!(a.max_depth, b.max_depth);
        assert!(a.complete && b.complete);
    }

    #[test]
    fn budget_cap_reports_incomplete() {
        let scenario = scenarios::retire_churn(3, 2, 2);
        let outcome = Explorer::exhaustive(10).run(&scenario);
        assert!(!outcome.complete);
        assert_eq!(outcome.executions, 10);
        assert!(outcome.violation.is_none());
    }

    #[test]
    fn random_mode_runs_requested_samples() {
        let scenario = scenarios::retire_churn(3, 1, 2);
        let outcome = Explorer::random(250, 7).run(&scenario);
        assert_eq!(outcome.executions, 250);
        assert!(outcome.violation.is_none());
    }

    #[test]
    fn violation_schedule_replays_to_same_failure() {
        // Find a violation with a fault injected, then replay its schedule
        // step by step and confirm the same failure point.
        let scenario = scenarios::with_fault(
            scenarios::retire_churn(2, 1, 2),
            Fault::NoAdjsInPredecessorCredit,
        );
        let outcome = Explorer::exhaustive(2_000_000).run(&scenario);
        let violation = outcome.violation.expect("fault must be detected");
        let mut model = scenario.build();
        let mut failed = None;
        for &tid in &violation.schedule {
            if let Err(e) = model.step(tid) {
                failed = Some(e);
                break;
            }
        }
        let replay_msg = match failed {
            Some(e) => e,
            None => model.finish().expect_err("end-state violation expected"),
        };
        assert_eq!(replay_msg, violation.message, "counterexample replays");
    }
}
