//! Exhaustive interleaving exploration of the §4.4 LL/SC head operations,
//! driving the *real* [`hyaline::llsc`] primitives.
//!
//! The Figure 7 port replaces the double-width CAS/FAA on `[HRef, HPtr]`
//! with single-width LL/SC over a reservation granule covering both words.
//! [`hyaline::llsc::Granule`] models that granule; this module decomposes
//! the Figure 7 head operations (`enter`'s dwFAA, `retire`'s dwCAS push,
//! `leave`'s decrement plus conditional list claim) into their individual
//! atomic actions — one `ll`, one `load_other`, one `sc` per transition —
//! and replays every schedule of a small thread set against a live
//! [`Granule`], checking:
//!
//! * **counted references** — `HRef` always equals the number of threads
//!   inside an operation;
//! * **exclusive claim** — a retirement list is only ever claimed while no
//!   thread is inside (the §4.4 race: a concurrent `enter` adopting the
//!   list must make the claim CAS fail);
//! * **no leaks** — at quiescence the head is `[0, 0]` and the claimed
//!   list chains cover every pushed node exactly once.
//!
//! The [`LlscFault::SingleWidthClaim`] mutation shows *why* the reservation
//! granule must span both words: replaying `leave`'s claim as a plain
//! single-width CAS on `HPtr` (no granule reservation) steals the list from
//! a concurrent enterer, and the explorer finds the violating schedule.

use hyaline::llsc::{Granule, Pair, Reservation, Word};

/// Rebuilds a live granule holding `pair`, using only public LL/SC ops.
///
/// Reservations taken against the previous incarnation stay meaningful: a
/// reservation is a value snapshot, and the rebuilt granule holds the same
/// packed value the original did when the state was forked.
fn granule_from(pair: Pair) -> Granule {
    let g = Granule::new();
    if pair.hptr != 0 {
        let (_, res) = g.ll(Word::Ptr);
        assert!(g.sc(res, pair.hptr), "fresh granule SC cannot fail");
    }
    if pair.href != 0 {
        let (_, res) = g.ll(Word::Ref);
        assert!(g.sc(res, pair.href), "fresh granule SC cannot fail");
    }
    g
}

/// Optional algorithm mutation, to prove the checker can see the bug the
/// reservation granule exists to prevent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LlscFault {
    /// Faithful Figure 7 behaviour.
    #[default]
    None,
    /// `leave`'s claim uses a plain single-width CAS on `HPtr` that ignores
    /// the granule reservation (and therefore concurrent `HRef` changes).
    SingleWidthClaim,
}

/// A scenario: `threads` threads, each performing `rounds` rounds of
/// `enter → push one node → leave` against one LL/SC head.
#[derive(Debug, Clone)]
pub struct LlscScenario {
    /// Number of threads.
    pub threads: usize,
    /// Rounds of enter/(push)/leave per thread.
    pub rounds: u32,
    /// The last `observers` threads skip the push phase: each of their
    /// rounds is just `enter → leave` (readers in Hyaline terms). Fewer
    /// atomic actions per round, so the schedule tree closes much sooner —
    /// and an observer's final leave still claims, exercising the handoff.
    pub observers: usize,
    /// Algorithm mutation under test.
    pub fault: LlscFault,
    /// Human-readable description.
    pub name: String,
}

impl LlscScenario {
    /// The standard churn scenario: every thread pushes every round.
    pub fn churn(threads: usize, rounds: u32) -> Self {
        Self {
            threads,
            rounds,
            observers: 0,
            fault: LlscFault::None,
            name: format!("llsc_churn(threads={threads}, rounds={rounds})"),
        }
    }

    /// Converts the last `observers` threads into enter/leave-only readers.
    pub fn with_observers(mut self, observers: usize) -> Self {
        assert!(observers <= self.threads);
        self.observers = observers;
        self.name = format!("{}+observers={observers}", self.name);
        self
    }

    /// The same scenario with a fault injected.
    pub fn with_fault(mut self, fault: LlscFault) -> Self {
        self.fault = fault;
        self.name = format!("{}+{fault:?}", self.name);
        self
    }

    fn is_observer(&self, t: usize) -> bool {
        t >= self.threads - self.observers
    }

    /// The unique nonzero node id thread `t` pushes in round `r`.
    fn node_id(&self, t: usize, r: u32) -> u32 {
        1 + t as u32 * self.rounds + r
    }
}

/// Per-thread control state: each variant is *between* two atomic actions,
/// and one step performs exactly one `ll` / `load_other` / `load_pair` /
/// `sc` on the shared granule.
#[derive(Debug, Clone, Copy)]
enum Ctl {
    /// dwFAA attempt: LL the ref word.
    EnterLl,
    /// dwFAA: ordinary load of the pointer word.
    EnterLoad { res: Reservation, href: u32 },
    /// dwFAA: SC `href + 1`; retry from `EnterLl` on failure.
    EnterSc { res: Reservation, href: u32, hptr: u32 },
    /// Push: read the expected pair (the caller's `head.pair()`).
    PushRead,
    /// Push (dwCAS_Ptr): LL the pointer word.
    PushLl { expected: Pair },
    /// Push: ordinary load of the ref word.
    PushLoad { expected: Pair, res: Reservation, hptr: u32 },
    /// Push: compare with `expected`, SC the new node id; retry on failure.
    PushSc { expected: Pair, res: Reservation, hptr: u32, href: u32 },
    /// Leave: read the expected pair.
    LeaveRead,
    /// Leave (dwCAS_Ref): LL the ref word.
    LeaveLl { expected: Pair },
    /// Leave: ordinary load of the pointer word.
    LeaveLoad { expected: Pair, res: Reservation, href: u32 },
    /// Leave: compare with `expected`, SC `href - 1`; retry on failure.
    LeaveSc { expected: Pair, res: Reservation, href: u32, hptr: u32 },
    /// Claim (dwCAS_Ptr, single attempt): LL the pointer word.
    ClaimLl { target: u32 },
    /// Claim: ordinary load of the ref word.
    ClaimLoad { target: u32, res: Reservation, hptr: u32 },
    /// Claim: SC null iff the pair is still `[0, target]`.
    ClaimSc { target: u32, res: Reservation, hptr: u32, href: u32 },
    /// Program finished.
    Done,
}

#[derive(Clone)]
struct LlscState {
    /// The granule value between steps (the granule itself is rebuilt from
    /// this for every step, so forked DFS branches cannot share one).
    head: Pair,
    ctl: Vec<Ctl>,
    round: Vec<u32>,
    /// Threads currently inside an operation (entered, not yet left).
    inside: Vec<bool>,
    /// `next[i]` = pointer word observed when node id `next_key[i]` was
    /// pushed (a parallel-array map to keep the state `Clone`-cheap).
    next_key: Vec<u32>,
    next_val: Vec<u32>,
    /// Heads of claimed retirement lists, in claim order.
    claimed: Vec<u32>,
}

impl LlscState {
    fn new(threads: usize) -> Self {
        LlscState {
            head: Pair::default(),
            ctl: vec![Ctl::EnterLl; threads],
            round: vec![0; threads],
            inside: vec![false; threads],
            next_key: Vec::new(),
            next_val: Vec::new(),
            claimed: Vec::new(),
        }
    }

    fn next_of(&self, id: u32) -> Option<u32> {
        self.next_key
            .iter()
            .position(|&k| k == id)
            .map(|i| self.next_val[i])
    }
}

/// A safety violation found under some schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LlscViolation {
    /// What went wrong.
    pub message: String,
    /// The thread indices scheduled, in order, up to the violating step.
    pub schedule: Vec<usize>,
}

/// Result of exploring an [`LlscScenario`].
#[derive(Debug, Clone)]
pub struct LlscOutcome {
    /// Complete schedules explored.
    pub schedules: u64,
    /// First violation encountered, if any.
    pub violation: Option<LlscViolation>,
    /// Whether the whole tree fit in the budget.
    pub complete: bool,
}

/// Explores every interleaving of `scenario` (up to `budget` complete
/// schedules), checking the head-operation invariants at each step.
pub fn explore(scenario: &LlscScenario, budget: u64) -> LlscOutcome {
    let mut outcome = LlscOutcome {
        schedules: 0,
        violation: None,
        complete: true,
    };
    let mut schedule = Vec::new();
    dfs(
        scenario,
        LlscState::new(scenario.threads),
        &mut schedule,
        &mut outcome,
        budget,
    );
    outcome
}

/// Advances `t` past a finished leave: next round or `Done`.
fn next_round(scenario: &LlscScenario, state: &mut LlscState, t: usize) {
    state.round[t] += 1;
    state.ctl[t] = if state.round[t] < scenario.rounds {
        Ctl::EnterLl
    } else {
        Ctl::Done
    };
}

fn step(
    scenario: &LlscScenario,
    state: &mut LlscState,
    t: usize,
    schedule: &[usize],
) -> Result<(), LlscViolation> {
    let fail = |message: String| LlscViolation {
        message,
        schedule: schedule.to_vec(),
    };
    let g = granule_from(state.head);
    match state.ctl[t] {
        Ctl::EnterLl => {
            let (href, res) = g.ll(Word::Ref);
            state.ctl[t] = Ctl::EnterLoad { res, href };
        }
        Ctl::EnterLoad { res, href } => {
            let hptr = g.load_other(Word::Ref);
            state.ctl[t] = Ctl::EnterSc { res, href, hptr };
        }
        Ctl::EnterSc { res, href, hptr } => {
            if g.sc(res, href.wrapping_add(1)) {
                // Entered: the handle (`hptr` snapshot) marks the sublist
                // retired before us; double-width atomicity is guaranteed
                // because the SC validated the whole granule. The adopted
                // handle must name a node some thread really pushed — a
                // torn read of the two head words would break this.
                if hptr != 0 && state.next_of(hptr).is_none() {
                    return Err(fail(format!(
                        "thread {t} adopted handle {hptr}, which was never pushed"
                    )));
                }
                state.inside[t] = true;
                state.ctl[t] = if scenario.is_observer(t) {
                    Ctl::LeaveRead
                } else {
                    Ctl::PushRead
                };
            } else {
                state.ctl[t] = Ctl::EnterLl;
            }
        }
        Ctl::PushRead => {
            let expected = g.load_pair();
            state.ctl[t] = Ctl::PushLl { expected };
        }
        Ctl::PushLl { expected } => {
            let (hptr, res) = g.ll(Word::Ptr);
            state.ctl[t] = Ctl::PushLoad { expected, res, hptr };
        }
        Ctl::PushLoad { expected, res, hptr } => {
            let href = g.load_other(Word::Ptr);
            state.ctl[t] = Ctl::PushSc { expected, res, hptr, href };
        }
        Ctl::PushSc { expected, res, hptr, href } => {
            let id = scenario.node_id(t, state.round[t]);
            if (Pair { href, hptr }) == expected && g.sc(res, id) {
                // The pushed node links to the previous head.
                state.next_key.push(id);
                state.next_val.push(expected.hptr);
                state.ctl[t] = Ctl::LeaveRead;
            } else {
                state.ctl[t] = Ctl::PushRead;
            }
        }
        Ctl::LeaveRead => {
            let expected = g.load_pair();
            if expected.href == 0 {
                return Err(fail(format!(
                    "thread {t} leaving while HRef is already zero"
                )));
            }
            state.ctl[t] = Ctl::LeaveLl { expected };
        }
        Ctl::LeaveLl { expected } => {
            let (href, res) = g.ll(Word::Ref);
            state.ctl[t] = Ctl::LeaveLoad { expected, res, href };
        }
        Ctl::LeaveLoad { expected, res, href } => {
            let hptr = g.load_other(Word::Ref);
            state.ctl[t] = Ctl::LeaveSc { expected, res, href, hptr };
        }
        Ctl::LeaveSc { expected, res, href, hptr } => {
            if (Pair { href, hptr }) == expected && g.sc(res, expected.href - 1) {
                state.inside[t] = false;
                if expected.href == 1 && expected.hptr != 0 {
                    // HRef hit zero with a non-empty list: try to claim it
                    // (one attempt, exactly as `LlscHead::leave`).
                    state.ctl[t] = Ctl::ClaimLl { target: expected.hptr };
                } else {
                    next_round(scenario, state, t);
                }
            } else {
                state.ctl[t] = Ctl::LeaveRead;
            }
        }
        Ctl::ClaimLl { target } => {
            let (hptr, res) = g.ll(Word::Ptr);
            state.ctl[t] = Ctl::ClaimLoad { target, res, hptr };
        }
        Ctl::ClaimLoad { target, res, hptr } => {
            let href = g.load_other(Word::Ptr);
            state.ctl[t] = Ctl::ClaimSc { target, res, hptr, href };
        }
        Ctl::ClaimSc { target, res, hptr, href } => {
            let committed = match scenario.fault {
                LlscFault::None => href == 0 && hptr == target && g.sc(res, 0),
                // The mutation: a plain single-width CAS on HPtr — no
                // granule reservation, no HRef check. Succeeds whenever the
                // pointer word alone still matches.
                LlscFault::SingleWidthClaim => {
                    let current = g.load_pair();
                    if current.hptr == target {
                        state.head = Pair { href: current.href, hptr: 0 };
                        true
                    } else {
                        false
                    }
                }
            };
            if committed {
                if let Some(inside) = (0..scenario.threads).find(|&u| state.inside[u]) {
                    return Err(fail(format!(
                        "thread {t} claimed list {target} while thread {inside} \
                         is inside an operation (its adopted sublist is stolen)"
                    )));
                }
                state.claimed.push(target);
            }
            next_round(scenario, state, t);
            // The fault path wrote `state.head` directly; skip the granule
            // read-back below by returning here.
            if scenario.fault == LlscFault::SingleWidthClaim {
                let inside = state.inside.iter().filter(|&&b| b).count() as u32;
                debug_assert_eq!(state.head.href, inside);
                return Ok(());
            }
        }
        Ctl::Done => unreachable!("Done threads are never enabled"),
    }
    state.head = g.load_pair();
    // Counted-reference invariant: HRef tracks the threads inside.
    let inside = state.inside.iter().filter(|&&b| b).count() as u32;
    if state.head.href != inside {
        return Err(fail(format!(
            "HRef {} diverged from the {inside} thread(s) inside",
            state.head.href
        )));
    }
    Ok(())
}

fn check_quiescence(
    scenario: &LlscScenario,
    state: &LlscState,
    schedule: &[usize],
) -> Result<(), LlscViolation> {
    let fail = |message: String| LlscViolation {
        message,
        schedule: schedule.to_vec(),
    };
    if state.head != Pair::default() {
        return Err(fail(format!(
            "head {:?} not [0, 0] at quiescence: the last leaver must claim",
            state.head
        )));
    }
    // Every pushed node must be covered by exactly one claimed chain.
    let mut seen = Vec::new();
    for &head in &state.claimed {
        let mut id = head;
        while id != 0 {
            if seen.contains(&id) {
                return Err(fail(format!("node {id} claimed twice")));
            }
            seen.push(id);
            id = state
                .next_of(id)
                .ok_or_else(|| fail(format!("claimed node {id} was never pushed")))?;
        }
    }
    let pushed = (scenario.threads - scenario.observers) * scenario.rounds as usize;
    if seen.len() != pushed {
        return Err(fail(format!(
            "leak at quiescence: {} of {pushed} nodes claimed",
            seen.len()
        )));
    }
    Ok(())
}

fn dfs(
    scenario: &LlscScenario,
    state: LlscState,
    schedule: &mut Vec<usize>,
    outcome: &mut LlscOutcome,
    budget: u64,
) {
    if outcome.violation.is_some() {
        return;
    }
    if outcome.schedules >= budget {
        outcome.complete = false;
        return;
    }
    let runnable: Vec<usize> = (0..scenario.threads)
        .filter(|&t| !matches!(state.ctl[t], Ctl::Done))
        .collect();
    if runnable.is_empty() {
        if let Err(v) = check_quiescence(scenario, &state, schedule) {
            outcome.violation = Some(v);
            return;
        }
        outcome.schedules += 1;
        return;
    }
    for t in runnable {
        let mut next = state.clone();
        schedule.push(t);
        match step(scenario, &mut next, t, schedule) {
            Ok(()) => dfs(scenario, next, schedule, outcome, budget),
            Err(v) => outcome.violation = Some(v),
        }
        schedule.pop();
        if outcome.violation.is_some() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_rounds_are_exhaustive_and_safe() {
        // One thread, two rounds: each round pushes one node, the leave
        // claims it (HRef 1 -> 0 with a non-empty list).
        let outcome = explore(&LlscScenario::churn(1, 2), 1_000_000);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.complete);
        assert_eq!(outcome.schedules, 1, "one thread has one schedule");
    }

    #[test]
    fn two_thread_churn_budgeted() {
        // The full tree is large (each round is ~14 atomic actions); a
        // budgeted prefix still covers hundreds of thousands of schedules,
        // including the §4.4 claim-vs-enter races near the leave tail.
        let outcome = explore(&LlscScenario::churn(2, 1), 150_000);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.schedules >= 150_000);
    }

    #[test]
    #[cfg_attr(
        not(feature = "slow-tests"),
        ignore = "exhaustive LL/SC DFS; run with --features slow-tests (or --ignored)"
    )]
    fn pusher_observer_exhaustive() {
        // One pushing thread, one enter/leave-only observer: the schedule
        // tree closes completely, covering every claim-vs-enter handoff
        // (including the observer's final leave doing the claim).
        let scenario = LlscScenario::churn(2, 1).with_observers(1);
        let outcome = explore(&scenario, u64::MAX);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.complete, "schedule tree fully explored");
        assert!(outcome.schedules > 100_000, "{}", outcome.schedules);
    }

    #[test]
    #[cfg_attr(
        not(feature = "slow-tests"),
        ignore = "deep LL/SC DFS; run with --features slow-tests (or --ignored)"
    )]
    fn two_thread_churn_deep() {
        // Symmetric two-pusher churn: SC-failure retry subtrees put full
        // closure out of reach, so explore a deep fixed prefix instead.
        let outcome = explore(&LlscScenario::churn(2, 1), 3_000_000);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.schedules >= 3_000_000);
    }

    #[test]
    fn single_width_claim_mutation_is_found() {
        // Replace the claim's granule-validated SC with a plain pointer
        // CAS: a concurrent enter adopting the list no longer fails the
        // claim, and the checker must find the stealing schedule.
        let scenario = LlscScenario::churn(2, 1).with_fault(LlscFault::SingleWidthClaim);
        let outcome = explore(&scenario, 5_000_000);
        let violation = outcome.violation.expect("the stolen list must be found");
        assert!(
            violation.message.contains("inside an operation"),
            "unexpected violation: {}",
            violation.message
        );
    }

    #[test]
    fn claim_handoff_schedule_reaches_adoption() {
        // Directed replay of the Figure 7 race: T0 decrements HRef to zero,
        // T1 enters (adopting the intact list) before T0's claim, and T0's
        // claim SC must fail. The run ends clean: T1's leave claims a chain
        // covering both nodes.
        let scenario = LlscScenario::churn(2, 1);
        let mut state = LlscState::new(2);
        let mut schedule = Vec::new();
        let mut run = |state: &mut LlscState, t: usize| {
            schedule.push(t);
            step(&scenario, state, t, &schedule).expect("no violation in this schedule")
        };
        // T0: enter (3), push (4), leave decrement (4) -> HRef 0, HPtr = 1.
        for _ in 0..11 {
            run(&mut state, 0);
        }
        assert_eq!(state.head, Pair { href: 0, hptr: 1 });
        assert!(matches!(state.ctl[0], Ctl::ClaimLl { target: 1 }));
        // T0 takes its claim LL + load, then T1 enters before the SC.
        run(&mut state, 0);
        run(&mut state, 0);
        for _ in 0..3 {
            run(&mut state, 1);
        }
        assert_eq!(state.head, Pair { href: 1, hptr: 1 }, "T1 adopted the list");
        // T0's claim SC now fails (the granule changed since its LL).
        run(&mut state, 0);
        assert!(state.claimed.is_empty(), "claim must fail after adoption");
        assert!(matches!(state.ctl[0], Ctl::Done));
        // T1 finishes: push node 2 (links to 1), leave, claim chain 2 -> 1.
        while !matches!(state.ctl[1], Ctl::Done) {
            run(&mut state, 1);
        }
        check_quiescence(&scenario, &state, &schedule).expect("clean quiescence");
        assert_eq!(state.claimed, vec![2]);
        assert_eq!(state.next_of(2), Some(1), "T1's node links to T0's");
    }
}
