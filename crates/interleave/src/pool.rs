//! Exhaustive interleaving exploration of the handle-pool protocol
//! (`smr_core::HandlePool`): checkout / return racing `enter`/`leave`.
//!
//! The pool's state transitions are tiny — pop a parked handle or create
//! one under the cap, park a handle and wake a waiter — but they race with
//! the reservation lifecycle of the handle being exchanged. The property
//! that matters is a happens-before edge: **a handle must only be parked
//! after its `leave`**, otherwise the next task receives a handle whose
//! reservation is still pinning reclamation (a "stalled thread" nobody can
//! ever unstall, because the task that entered is gone).
//!
//! Like the Hyaline model in [`crate::model`], every transition is one
//! atomic action under sequential consistency: pool operations are mutex
//! sections in the real implementation (one atomic step relative to other
//! pool operations), and `enter`/`leave` touch only the handle's domain
//! state. The explorer runs every schedule of a small task set and checks:
//!
//! * **single holder** — a handle is never held by two tasks at once;
//! * **cap respected** — at most `capacity` handles are ever created;
//! * **no parked reservation** — a handle is inactive when parked (the
//!   checkout/return vs. `leave` race, above);
//! * **progress** — no reachable state deadlocks: blocked checkouts are
//!   always eventually served (the model's condvar has no lost wakeups);
//! * **quiescence** — when every task finished, all handles are parked and
//!   inactive.

/// One atomic step of a pool task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolOp {
    /// Take a parked handle, or create one while under the cap; blocks
    /// (transition disabled) when the pool is exhausted.
    Checkout,
    /// `enter` on the held handle (begin an operation / reservation).
    Enter,
    /// `leave` on the held handle (end the reservation).
    Leave,
    /// Park the held handle back into the pool.
    Checkin,
}

/// A scenario: a pool capacity plus one program per task.
#[derive(Debug, Clone)]
pub struct PoolScenario {
    /// Maximum handles the pool may ever create.
    pub capacity: usize,
    /// Per-task step sequences.
    pub programs: Vec<Vec<PoolOp>>,
    /// Human-readable description.
    pub name: String,
}

impl PoolScenario {
    /// `tasks` well-behaved tasks (`checkout → enter → leave → checkin`),
    /// each repeated `rounds` times, over a pool of `capacity` handles.
    pub fn round_trips(tasks: usize, rounds: usize, capacity: usize) -> Self {
        let program: Vec<PoolOp> = (0..rounds)
            .flat_map(|_| {
                [
                    PoolOp::Checkout,
                    PoolOp::Enter,
                    PoolOp::Leave,
                    PoolOp::Checkin,
                ]
            })
            .collect();
        Self {
            capacity,
            programs: vec![program; tasks],
            name: format!("pool_round_trips(tasks={tasks}, rounds={rounds}, cap={capacity})"),
        }
    }
}

/// A safety violation found under some schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolViolation {
    /// What went wrong.
    pub message: String,
    /// The task indices scheduled, in order, up to the violating step.
    pub schedule: Vec<usize>,
}

/// Result of exploring a [`PoolScenario`].
#[derive(Debug, Clone)]
pub struct PoolOutcome {
    /// Complete schedules explored.
    pub schedules: u64,
    /// First violation encountered, if any.
    pub violation: Option<PoolViolation>,
    /// Whether the whole tree fit in the budget.
    pub complete: bool,
}

#[derive(Clone)]
struct PoolState {
    /// Parked handle ids.
    parked: Vec<usize>,
    /// Handles created so far (ids are `0..issued`).
    issued: usize,
    /// `holder[h]`: task currently holding handle `h`.
    holder: Vec<Option<usize>>,
    /// `active[h]`: handle `h` is inside an operation (entered, not left).
    active: Vec<bool>,
    /// Per-task program counter and held handle.
    pc: Vec<usize>,
    held: Vec<Option<usize>>,
}

/// Explores every interleaving of `scenario` (up to `budget` complete
/// schedules), checking the pool-protocol invariants at each step.
pub fn explore(scenario: &PoolScenario, budget: u64) -> PoolOutcome {
    let state = PoolState {
        parked: Vec::new(),
        issued: 0,
        holder: Vec::new(),
        active: Vec::new(),
        pc: vec![0; scenario.programs.len()],
        held: vec![None; scenario.programs.len()],
    };
    let mut outcome = PoolOutcome {
        schedules: 0,
        violation: None,
        complete: true,
    };
    let mut schedule = Vec::new();
    dfs(scenario, state, &mut schedule, &mut outcome, budget);
    outcome
}

fn enabled(scenario: &PoolScenario, state: &PoolState, task: usize) -> bool {
    let program = &scenario.programs[task];
    match program.get(state.pc[task]) {
        None => false,
        // A blocked checkout is a disabled transition (condvar wait): it
        // becomes enabled again the moment a handle is parked.
        Some(PoolOp::Checkout) => {
            !state.parked.is_empty() || state.issued < scenario.capacity
        }
        Some(_) => true,
    }
}

fn step(
    scenario: &PoolScenario,
    state: &mut PoolState,
    task: usize,
    schedule: &[usize],
) -> Result<(), PoolViolation> {
    let fail = |message: String| PoolViolation {
        message,
        schedule: schedule.to_vec(),
    };
    let op = scenario.programs[task][state.pc[task]];
    state.pc[task] += 1;
    match op {
        PoolOp::Checkout => {
            if state.held[task].is_some() {
                return Err(fail(format!(
                    "task {task} checked out while already holding a handle"
                )));
            }
            let handle = if let Some(h) = state.parked.pop() {
                h
            } else {
                if state.issued >= scenario.capacity {
                    return Err(fail(format!(
                        "task {task} checkout ran while the pool was exhausted"
                    )));
                }
                let h = state.issued;
                state.issued += 1;
                state.holder.push(None);
                state.active.push(false);
                h
            };
            if let Some(other) = state.holder[handle] {
                return Err(fail(format!(
                    "handle {handle} handed to task {task} while held by task {other}"
                )));
            }
            if state.active[handle] {
                return Err(fail(format!(
                    "handle {handle} checked out by task {task} while still \
                     inside an operation (parked before its leave)"
                )));
            }
            state.holder[handle] = Some(task);
            state.held[task] = Some(handle);
        }
        PoolOp::Enter => {
            let handle = state.held[task]
                .ok_or_else(|| fail(format!("task {task} entered without a handle")))?;
            state.active[handle] = true;
        }
        PoolOp::Leave => {
            let handle = state.held[task]
                .ok_or_else(|| fail(format!("task {task} left without a handle")))?;
            state.active[handle] = false;
        }
        PoolOp::Checkin => {
            let handle = state.held[task]
                .take()
                .ok_or_else(|| fail(format!("task {task} checked in without a handle")))?;
            if state.active[handle] {
                return Err(fail(format!(
                    "handle {handle} parked by task {task} while still inside \
                     an operation: its reservation would pin reclamation forever"
                )));
            }
            state.holder[handle] = None;
            state.parked.push(handle);
        }
    }
    Ok(())
}

fn dfs(
    scenario: &PoolScenario,
    state: PoolState,
    schedule: &mut Vec<usize>,
    outcome: &mut PoolOutcome,
    budget: u64,
) {
    if outcome.violation.is_some() {
        return;
    }
    if outcome.schedules >= budget {
        outcome.complete = false;
        return;
    }
    let tasks: Vec<usize> = (0..scenario.programs.len())
        .filter(|&t| enabled(scenario, &state, t))
        .collect();
    if tasks.is_empty() {
        let unfinished: Vec<usize> = (0..scenario.programs.len())
            .filter(|&t| state.pc[t] < scenario.programs[t].len())
            .collect();
        if !unfinished.is_empty() {
            outcome.violation = Some(PoolViolation {
                message: format!("deadlock: tasks {unfinished:?} blocked forever"),
                schedule: schedule.clone(),
            });
            return;
        }
        // Quiescence: everything parked, nothing active.
        if state.parked.len() != state.issued {
            outcome.violation = Some(PoolViolation {
                message: format!(
                    "leak at quiescence: {} of {} handles parked",
                    state.parked.len(),
                    state.issued
                ),
                schedule: schedule.clone(),
            });
            return;
        }
        if state.active.iter().any(|&a| a) {
            outcome.violation = Some(PoolViolation {
                message: "active handle at quiescence".into(),
                schedule: schedule.clone(),
            });
            return;
        }
        outcome.schedules += 1;
        return;
    }
    for t in tasks {
        let mut next = state.clone();
        schedule.push(t);
        match step(scenario, &mut next, t, schedule) {
            Ok(()) => dfs(scenario, next, schedule, outcome, budget),
            Err(v) => outcome.violation = Some(v),
        }
        schedule.pop();
        if outcome.violation.is_some() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_within_capacity_are_safe() {
        let outcome = explore(&PoolScenario::round_trips(2, 2, 2), 1_000_000);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.complete);
        assert!(outcome.schedules > 0);
    }

    #[test]
    fn oversubscribed_tasks_share_one_handle_without_deadlock() {
        // Three tasks over a single-handle pool: every schedule must
        // complete (the blocked checkouts are eventually served) and the
        // handle must never be double-held or parked active.
        let outcome = explore(&PoolScenario::round_trips(3, 1, 1), 1_000_000);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.complete, "exploration must be exhaustive");
        assert!(outcome.schedules > 0);
    }

    #[test]
    fn checkin_racing_leave_is_caught() {
        // The buggy ordering: park the handle *before* leave. Some other
        // task can then check it out mid-operation; every interleaving that
        // reaches the park must be flagged.
        let scenario = PoolScenario {
            capacity: 1,
            programs: vec![
                vec![PoolOp::Checkout, PoolOp::Enter, PoolOp::Checkin, PoolOp::Leave],
                vec![PoolOp::Checkout, PoolOp::Enter, PoolOp::Leave, PoolOp::Checkin],
            ],
            name: "checkin_before_leave".into(),
        };
        let outcome = explore(&scenario, 1_000_000);
        let violation = outcome.violation.expect("the race must be detected");
        assert!(
            violation.message.contains("inside an operation"),
            "unexpected violation: {}",
            violation.message
        );
    }

    #[test]
    fn nested_checkout_self_deadlock_is_caught() {
        // A task re-checking-out while holding the only handle can never
        // proceed: the explorer must report the deadlock, not hang.
        let scenario = PoolScenario {
            capacity: 1,
            programs: vec![vec![PoolOp::Checkout, PoolOp::Checkout]],
            name: "nested_checkout".into(),
        };
        let outcome = explore(&scenario, 1_000);
        let violation = outcome.violation.expect("deadlock must be detected");
        assert!(violation.message.contains("deadlock"), "{violation:?}");
    }

    #[test]
    fn capacity_is_never_exceeded() {
        // With cap 2 and four eager tasks, `issued` may never pass 2 in any
        // interleaving; `explore` checks this on every checkout.
        let outcome = explore(&PoolScenario::round_trips(4, 1, 2), 2_000_000);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.complete);
    }
}
