//! Exhaustive interleaving exploration of the deferred-flush reclaimer
//! protocol (`smr-async`): dirty check-ins and ticket pushes racing
//! background drains and the shutdown handshake.
//!
//! The protocol under test is the hand-off between connection tasks and
//! per-shard reclaimers:
//!
//! * a producer **parks a dirty handle** (retire batch accumulated, not
//!   flushed) and then **pushes one ticket** into a bounded queue;
//! * if the push is refused (queue `Full`, or `Closed` by shutdown) the
//!   producer **flushes one dirty handle inline** instead, so every parked
//!   batch always has exactly one claimant;
//! * a reclaimer loops **recv → flush-one-dirty**; after the queue is
//!   closed *and drained* it runs a final **sweep** (flush everything
//!   still dirty) and only then reports done;
//! * the service **joins** the connection fleet and the reclaimers (the
//!   executor scope runs every task to completion) and relies on the
//!   handshake contract: when the join completes, no ticket is queued and
//!   no batch is parked dirty.
//!
//! Every transition is one atomic action (each is a single mutex section
//! in the real implementation: the pool lock or the queue lock). The
//! explorer runs every schedule of a small task set and checks:
//!
//! * **no batch dropped** — at quiescence every parked batch was flushed
//!   (`flushed == parked`), the queue is empty, and nothing is dirty;
//! * **no batch double-drained** — `flushed` never exceeds `parked`
//!   (a flush only consumes a batch that is actually parked dirty);
//! * **shutdown quiesces** — no reachable state deadlocks, and the
//!   join-point contract above holds on *every* schedule;
//! * **faults are caught** — injected protocol mutations (acknowledging
//!   shutdown before draining the backlog, dropping a `Closed` ticket
//!   without the inline fallback, freeing a batch twice) each produce a
//!   violation on some schedule.

/// An injected protocol mutation; [`ReclaimerFault::None`] is the correct
/// protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReclaimerFault {
    /// The correct protocol.
    #[default]
    None,
    /// The reclaimer acknowledges shutdown the moment it observes the
    /// closed flag, *then* drains the backlog — "drain after shutdown".
    /// The join-point contract sees queued tickets or dirty handles.
    AckBeforeDrain,
    /// A producer whose push fails `Closed` skips the inline-flush
    /// fallback, orphaning its dirty handle.
    DropClosedTicket,
    /// The reclaimer frees two batches for one drained ticket.
    DoubleFlush,
}

/// A scenario: producer/reclaimer counts, queue bound, shutdown style.
#[derive(Debug, Clone)]
pub struct ReclaimerScenario {
    /// Connection tasks; each parks-and-pushes `rounds` times.
    pub producers: usize,
    /// Park/push rounds per producer.
    pub rounds: usize,
    /// Bound of the hand-off queue (forces the `Full` fallback).
    pub queue_capacity: usize,
    /// `true`: a dedicated closer task closes the queue at an arbitrary
    /// point, racing in-flight producers (exercises the `Closed`
    /// fallback). `false`: the gate closes when the last producer
    /// departs, as in the KV service.
    pub early_close: bool,
    /// Injected mutation.
    pub fault: ReclaimerFault,
    /// Human-readable description.
    pub name: String,
}

impl ReclaimerScenario {
    /// The KV-service shape: producers depart through the shutdown gate,
    /// whose last departure closes the queue.
    pub fn gated(producers: usize, rounds: usize, queue_capacity: usize) -> Self {
        Self {
            producers,
            rounds,
            queue_capacity,
            early_close: false,
            fault: ReclaimerFault::None,
            name: format!(
                "reclaimer_gated(producers={producers}, rounds={rounds}, cap={queue_capacity})"
            ),
        }
    }

    /// Shutdown racing live producers: a closer task may close the queue
    /// between any two steps, so pushes can fail `Closed` mid-flight.
    pub fn early_close(producers: usize, rounds: usize, queue_capacity: usize) -> Self {
        Self {
            producers,
            rounds,
            queue_capacity,
            early_close: true,
            fault: ReclaimerFault::None,
            name: format!(
                "reclaimer_early_close(producers={producers}, rounds={rounds}, cap={queue_capacity})"
            ),
        }
    }

    /// The same scenario with `fault` injected.
    pub fn with_fault(mut self, fault: ReclaimerFault) -> Self {
        self.fault = fault;
        self.name = format!("{} + {:?}", self.name, fault);
        self
    }
}

/// A safety violation found under some schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReclaimerViolation {
    /// What went wrong.
    pub message: String,
    /// The task indices scheduled, in order, up to the violating step.
    pub schedule: Vec<usize>,
}

/// Result of exploring a [`ReclaimerScenario`].
#[derive(Debug, Clone)]
pub struct ReclaimerOutcome {
    /// Complete schedules explored.
    pub schedules: u64,
    /// First violation encountered, if any.
    pub violation: Option<ReclaimerViolation>,
    /// Whether the whole tree fit in the budget.
    pub complete: bool,
}

/// Producer micro-state within one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProdPhase {
    /// Park a dirty handle (one pool-lock section).
    Park,
    /// `try_push` the matching ticket (one queue-lock section).
    Push,
    /// Inline `flush_one_dirty` after a refused push.
    Fallback,
    /// Departure through the shutdown gate (gated scenarios only).
    Depart,
    Finished,
}

/// Reclaimer state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecPhase {
    /// Awaiting `recv` (blocked while the queue is open and empty).
    Recv,
    /// Holding one drained ticket; next step is `flush_one_dirty`.
    Flush,
    /// Queue closed and drained: final `flush_dirty` sweep, one handle
    /// per step.
    Sweep,
    /// [`ReclaimerFault::AckBeforeDrain`] only: draining the backlog
    /// *after* having acknowledged shutdown.
    LateDrain,
    Finished,
}

#[derive(Clone)]
struct ModelState {
    /// Handles parked dirty (batches awaiting their flush).
    dirty: usize,
    /// Tickets in the hand-off queue.
    queued: usize,
    closed: bool,
    /// Batches parked dirty, cumulative.
    parked_total: usize,
    /// Batches flushed (inline + drain + sweep), cumulative.
    flushed_total: usize,
    prod_phase: Vec<ProdPhase>,
    prod_rounds_left: Vec<usize>,
    departed: usize,
    rec_phase: Vec<RecPhase>,
    rec_done: Vec<bool>,
    /// 0 = join reclaimers, 1 = observe quiescence, 2 = finished.
    waiter_pc: usize,
    closer_done: bool,
}

/// Task index layout: producers, then reclaimers (just one in these
/// scenarios), then the joining waiter, then the optional closer.
const RECLAIMERS: usize = 1;

fn waiter_task(scenario: &ReclaimerScenario) -> usize {
    scenario.producers + RECLAIMERS
}

fn closer_task(scenario: &ReclaimerScenario) -> usize {
    scenario.producers + RECLAIMERS + 1
}

fn task_count(scenario: &ReclaimerScenario) -> usize {
    scenario.producers + RECLAIMERS + 1 + usize::from(scenario.early_close)
}

/// Explores every interleaving of `scenario` (up to `budget` complete
/// schedules), checking the reclaimer-protocol invariants at each step.
pub fn explore(scenario: &ReclaimerScenario, budget: u64) -> ReclaimerOutcome {
    let state = ModelState {
        dirty: 0,
        queued: 0,
        closed: false,
        parked_total: 0,
        flushed_total: 0,
        prod_phase: vec![
            if scenario.rounds == 0 {
                ProdPhase::Depart
            } else {
                ProdPhase::Park
            };
            scenario.producers
        ],
        prod_rounds_left: vec![scenario.rounds; scenario.producers],
        departed: 0,
        rec_phase: vec![RecPhase::Recv; RECLAIMERS],
        rec_done: vec![false; RECLAIMERS],
        waiter_pc: 0,
        closer_done: false,
    };
    let mut outcome = ReclaimerOutcome {
        schedules: 0,
        violation: None,
        complete: true,
    };
    let mut schedule = Vec::new();
    dfs(scenario, state, &mut schedule, &mut outcome, budget);
    outcome
}

fn enabled(scenario: &ReclaimerScenario, state: &ModelState, task: usize) -> bool {
    if task < scenario.producers {
        match state.prod_phase[task] {
            ProdPhase::Finished => false,
            // Gated departure only exists in the gated scenario; in
            // early-close scenarios a producer simply finishes.
            ProdPhase::Depart => !scenario.early_close,
            _ => true,
        }
    } else if task < scenario.producers + RECLAIMERS {
        let r = task - scenario.producers;
        match state.rec_phase[r] {
            // recv parks on the queue's waker list while open and empty.
            RecPhase::Recv => state.queued > 0 || state.closed,
            RecPhase::Finished => false,
            _ => true,
        }
    } else if task == waiter_task(scenario) {
        match state.waiter_pc {
            // The service joins the whole scope: connections *and*
            // reclaimers. Joining reclaimers alone is not enough — a
            // producer racing an early close may still owe its inline
            // fallback flush after the reclaimers have swept and rejoined.
            0 => {
                state.rec_done.iter().all(|&d| d)
                    && state.prod_phase.iter().all(|&p| p == ProdPhase::Finished)
            }
            1 => true,
            _ => false,
        }
    } else {
        scenario.early_close && !state.closer_done
    }
}

fn advance_round(scenario: &ReclaimerScenario, state: &mut ModelState, task: usize) {
    state.prod_rounds_left[task] -= 1;
    state.prod_phase[task] = if state.prod_rounds_left[task] == 0 {
        if scenario.early_close {
            ProdPhase::Finished
        } else {
            ProdPhase::Depart
        }
    } else {
        ProdPhase::Park
    };
}

/// Flushes one dirty handle if any is parked; vacuous otherwise (the
/// handle a ticket referred to may have been swept or re-issued — the
/// real `flush_one_dirty` returns `false` then).
fn flush_one(state: &mut ModelState, batches: usize) {
    if state.dirty > 0 {
        state.dirty -= 1;
        state.flushed_total += batches;
    }
}

fn step(
    scenario: &ReclaimerScenario,
    state: &mut ModelState,
    task: usize,
    schedule: &[usize],
) -> Result<(), ReclaimerViolation> {
    let fail = |message: String| ReclaimerViolation {
        message,
        schedule: schedule.to_vec(),
    };
    if task < scenario.producers {
        match state.prod_phase[task] {
            ProdPhase::Park => {
                state.dirty += 1;
                state.parked_total += 1;
                state.prod_phase[task] = ProdPhase::Push;
            }
            ProdPhase::Push => {
                if state.closed {
                    if scenario.fault == ReclaimerFault::DropClosedTicket {
                        // Faulty: the Closed refusal is ignored and the
                        // dirty handle is orphaned without a claimant.
                        advance_round(scenario, state, task);
                    } else {
                        state.prod_phase[task] = ProdPhase::Fallback;
                    }
                } else if state.queued >= scenario.queue_capacity {
                    state.prod_phase[task] = ProdPhase::Fallback; // Full
                } else {
                    state.queued += 1;
                    advance_round(scenario, state, task);
                }
            }
            ProdPhase::Fallback => {
                flush_one(state, 1);
                advance_round(scenario, state, task);
            }
            ProdPhase::Depart => {
                state.departed += 1;
                if state.departed == scenario.producers {
                    state.closed = true;
                }
                state.prod_phase[task] = ProdPhase::Finished;
            }
            ProdPhase::Finished => unreachable!("finished producer scheduled"),
        }
    } else if task < scenario.producers + RECLAIMERS {
        let r = task - scenario.producers;
        match state.rec_phase[r] {
            RecPhase::Recv => {
                if scenario.fault == ReclaimerFault::AckBeforeDrain && state.closed {
                    // Faulty: acknowledge shutdown first, drain later.
                    state.rec_done[r] = true;
                    state.rec_phase[r] = RecPhase::LateDrain;
                } else if state.queued > 0 {
                    state.queued -= 1;
                    state.rec_phase[r] = RecPhase::Flush;
                } else {
                    // closed && empty: recv returned None.
                    state.rec_phase[r] = RecPhase::Sweep;
                }
            }
            RecPhase::Flush => {
                let batches = if scenario.fault == ReclaimerFault::DoubleFlush {
                    2
                } else {
                    1
                };
                flush_one(state, batches);
                state.rec_phase[r] = RecPhase::Recv;
            }
            RecPhase::Sweep => {
                if state.dirty > 0 {
                    flush_one(state, 1);
                } else {
                    state.rec_done[r] = true;
                    state.rec_phase[r] = RecPhase::Finished;
                }
            }
            RecPhase::LateDrain => {
                if state.queued > 0 {
                    state.queued -= 1;
                    flush_one(state, 1);
                } else if state.dirty > 0 {
                    flush_one(state, 1);
                } else {
                    state.rec_phase[r] = RecPhase::Finished;
                }
            }
            RecPhase::Finished => unreachable!("finished reclaimer scheduled"),
        }
    } else if task == waiter_task(scenario) {
        match state.waiter_pc {
            0 => state.waiter_pc = 1, // join completed: all reclaimers done
            1 => {
                // The shutdown handshake's contract, checked at the join
                // point rather than only at global quiescence.
                if state.queued > 0 || state.dirty > 0 {
                    return Err(fail(format!(
                        "shutdown handshake completed with {} ticket(s) queued and \
                         {} dirty handle(s) unflushed: retire work drained after \
                         shutdown (or never)",
                        state.queued, state.dirty
                    )));
                }
                state.waiter_pc = 2;
            }
            _ => unreachable!("finished waiter scheduled"),
        }
    } else {
        debug_assert_eq!(task, closer_task(scenario));
        state.closed = true;
        state.closer_done = true;
    }
    if state.flushed_total > state.parked_total {
        return Err(fail(format!(
            "double drain: {} batches flushed but only {} ever parked",
            state.flushed_total, state.parked_total
        )));
    }
    Ok(())
}

fn check_quiescence(
    scenario: &ReclaimerScenario,
    state: &ModelState,
    schedule: &[usize],
) -> Option<ReclaimerViolation> {
    let fail = |message: String| ReclaimerViolation {
        message,
        schedule: schedule.to_vec(),
    };
    let unfinished: Vec<usize> = (0..task_count(scenario))
        .filter(|&t| {
            if t < scenario.producers {
                state.prod_phase[t] != ProdPhase::Finished
            } else if t < scenario.producers + RECLAIMERS {
                state.rec_phase[t - scenario.producers] != RecPhase::Finished
            } else if t == waiter_task(scenario) {
                state.waiter_pc < 2
            } else {
                !state.closer_done
            }
        })
        .collect();
    if !unfinished.is_empty() {
        return Some(fail(format!(
            "deadlock: tasks {unfinished:?} blocked forever"
        )));
    }
    if state.queued > 0 {
        return Some(fail(format!(
            "{} ticket(s) dropped in the queue at quiescence",
            state.queued
        )));
    }
    if state.dirty > 0 {
        return Some(fail(format!(
            "shutdown did not quiesce: {} dirty handle(s) never flushed",
            state.dirty
        )));
    }
    if state.flushed_total != state.parked_total {
        return Some(fail(format!(
            "conservation broken: {} batches parked, {} flushed",
            state.parked_total, state.flushed_total
        )));
    }
    None
}

fn dfs(
    scenario: &ReclaimerScenario,
    state: ModelState,
    schedule: &mut Vec<usize>,
    outcome: &mut ReclaimerOutcome,
    budget: u64,
) {
    if outcome.violation.is_some() {
        return;
    }
    if outcome.schedules >= budget {
        outcome.complete = false;
        return;
    }
    let tasks: Vec<usize> = (0..task_count(scenario))
        .filter(|&t| enabled(scenario, &state, t))
        .collect();
    if tasks.is_empty() {
        match check_quiescence(scenario, &state, schedule) {
            Some(violation) => outcome.violation = Some(violation),
            None => outcome.schedules += 1,
        }
        return;
    }
    for t in tasks {
        let mut next = state.clone();
        schedule.push(t);
        match step(scenario, &mut next, t, schedule) {
            Ok(()) => dfs(scenario, next, schedule, outcome, budget),
            Err(v) => outcome.violation = Some(v),
        }
        schedule.pop();
        if outcome.violation.is_some() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gated_shutdown_quiesces_on_every_schedule() {
        // Two producers × two rounds over a capacity-1 queue (Full
        // fallback reachable), gate-closed: every schedule must conserve
        // batches and satisfy the join-point contract.
        let outcome = explore(&ReclaimerScenario::gated(2, 2, 1), 4_000_000);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.complete, "exploration must be exhaustive");
        assert!(outcome.schedules > 0);
    }

    #[test]
    fn early_close_races_are_absorbed_by_the_inline_fallback() {
        // A closer may close the queue between any two steps; producers
        // hitting Closed must flush inline, and the reclaimer's sweep
        // covers the rest.
        let outcome = explore(&ReclaimerScenario::early_close(2, 1, 1), 1_000_000);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.complete, "exploration must be exhaustive");
        assert!(outcome.schedules > 0);
    }

    #[test]
    #[cfg_attr(
        not(feature = "slow-tests"),
        ignore = "deep early-close DFS; run with --features slow-tests (or --ignored)"
    )]
    fn early_close_with_multiple_rounds_is_safe() {
        let outcome = explore(&ReclaimerScenario::early_close(2, 2, 1), 40_000_000);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.complete, "exploration must be exhaustive");
    }

    #[test]
    fn fault_drain_after_shutdown_is_caught() {
        // The reclaimer acknowledges shutdown before draining its
        // backlog: some schedule completes the handshake while tickets
        // or dirty handles are still outstanding.
        let scenario =
            ReclaimerScenario::gated(2, 1, 2).with_fault(ReclaimerFault::AckBeforeDrain);
        let outcome = explore(&scenario, 4_000_000);
        let violation = outcome.violation.expect("the fault must be detected");
        assert!(
            violation.message.contains("drained after shutdown"),
            "unexpected violation: {}",
            violation.message
        );
    }

    #[test]
    fn fault_dropped_closed_ticket_is_caught() {
        // A producer ignores the Closed refusal: its batch has no
        // claimant, and on schedules where the sweep has already run the
        // batch is never flushed.
        let scenario =
            ReclaimerScenario::early_close(2, 1, 2).with_fault(ReclaimerFault::DropClosedTicket);
        let outcome = explore(&scenario, 4_000_000);
        let violation = outcome.violation.expect("the fault must be detected");
        assert!(
            violation.message.contains("drained after shutdown")
                || violation.message.contains("never flushed"),
            "unexpected violation: {}",
            violation.message
        );
    }

    #[test]
    fn fault_double_flush_is_caught() {
        let scenario = ReclaimerScenario::gated(1, 1, 1).with_fault(ReclaimerFault::DoubleFlush);
        let outcome = explore(&scenario, 1_000_000);
        let violation = outcome.violation.expect("the fault must be detected");
        assert!(
            violation.message.contains("double drain"),
            "unexpected violation: {}",
            violation.message
        );
    }
}
