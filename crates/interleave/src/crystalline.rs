//! Exhaustive interleaving exploration of the Crystalline protocols: the
//! wait-free batch **handoff** (Crystalline-L) and the era-certification
//! **helping** of stalled protect loops (Crystalline-W).
//!
//! The `crystalline` crate's two additions to the Hyaline-1S skeleton each
//! introduce a new cross-thread accounting discipline:
//!
//! * a retirer that exhausts its CAS attempts deposits the batch's REFS
//!   pointer into the slot's *handoff cell* with an unconditional swap,
//!   tagged with the slot's occupancy sequence. The entry carries one
//!   `NRef` reference. A later retirer that displaces the entry must
//!   release that reference **only** when the tag proves the deposit-time
//!   occupancy ended — otherwise it adopts the entry and retries later;
//! * a helper raises a stalled slot's access era (CAS-max touch) and only
//!   **then** certifies the raised era into the slot's result word; the
//!   owner consumes the certificate by *reloading* the protected pointer
//!   and checking the global era has not passed the certified value.
//!
//! Like [`crate::pool`], every transition is one atomic action under
//! sequential consistency, and the model is exercised under every schedule
//! of small thread programs. Reference counts are signed running sums (the
//! model-level analogue of the wrapping `NRef`/`Adjs` accounting): a batch
//! is freed exactly when a delta application lands the sum on zero. The
//! checks wired into the model:
//!
//! * **use-after-free** — an occupant's `Use` of a held node whose batch
//!   has been freed;
//! * **double-free / accounting-after-free** — any reference delta applied
//!   to a freed batch;
//! * **leak / imbalance** — at quiescence (after a deterministic
//!   domain-teardown sweep of cells and adopted entries), every retired
//!   batch must be freed and every running sum must be zero.
//!
//! Fault-injected protocol variants ([`CrystalFault`]) must each be caught
//! by these checks: releasing a displaced entry without the tag check,
//! forgetting the handoff's reference count, and certifying an era without
//! first raising the slot's access. Each fault corresponds to a tempting
//! "simplification" of the production protocol; the explorer demonstrates
//! the schedule that breaks it.

/// A protocol bug injected into the model; the explorer must catch each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrystalFault {
    /// The displacing retirer releases the previous cell entry's reference
    /// unconditionally, skipping the occupancy-tag comparison.
    ReleaseWithoutTagCheck,
    /// The handoff deposit does not count toward the batch's insertions, so
    /// the final `adjust` under-credits the batch by one.
    ForgetHandoffInsert,
    /// The helper certifies the era *without* raising the slot's access
    /// first, so the certificate promises a reservation that was never
    /// published.
    CertifyWithoutTouch,
}

/// One atomic step of a modelled thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrystalOp {
    /// Occupant: begin an occupancy of `slot`.
    Enter(usize),
    /// Occupant: read the shared link into the thread's hold register.
    ReadLink,
    /// Occupant: dereference the held node (use-after-free check).
    Use,
    /// Occupant: end the occupancy of `slot` — deactivate the head,
    /// detach the retirement list, bump the occupancy sequence.
    LeaveBegin(usize),
    /// Occupant: collect `slot`'s handoff cell (release its reference).
    LeaveCollect(usize),
    /// Occupant: traverse the detached list, releasing one reference per
    /// batch.
    LeaveTraverse(usize),
    /// Occupant (helping scenario): `LeaveBegin` + `LeaveCollect` +
    /// `LeaveTraverse` as one step.
    LeaveAll(usize),
    /// Retirer: clear the shared link (the retire contract's unlink).
    Unlink,
    /// Retirer: allocate-and-publish batch `b`'s node — stamp its birth
    /// with the current era and swap it into the link (unlinking the
    /// previous node).
    Publish(usize),
    /// Retirer: the insertion activity check on `slot` for batch `b`
    /// (`active && access >= birth`), plus the occupancy-tag read.
    CheckSlot {
        /// Target slot.
        slot: usize,
        /// Batch being retired.
        batch: usize,
    },
    /// Retirer: unconditional swap of batch `b` (tagged) into `slot`'s
    /// handoff cell; takes ownership of the displaced entry.
    DepositCell {
        /// Target slot.
        slot: usize,
        /// Batch being retired.
        batch: usize,
    },
    /// Retirer: decide the displaced entry's fate — release its reference
    /// if the slot's occupancy sequence moved past the entry's tag, else
    /// adopt it.
    Decide {
        /// Slot whose displaced entry is being decided.
        slot: usize,
    },
    /// Retirer: CAS-append batch `b` to `slot`'s retirement list (the
    /// non-handoff path; fails silently if the occupancy ended).
    InsertList {
        /// Target slot.
        slot: usize,
        /// Batch being retired.
        batch: usize,
    },
    /// Retirer: apply the accumulated insertion count to batch `b`'s
    /// reference sum (the `adjust_refs` step).
    AdjustRefs {
        /// Batch being credited.
        batch: usize,
    },
    /// Retirer: retry adopted entries, releasing those whose occupancy
    /// ended.
    RetryAdopted,
    /// Helper: advance the global era.
    AdvanceEra,
    /// Helper: observe a pending request on `slot` and raise its access to
    /// the current era (skipped under [`CrystalFault::CertifyWithoutTouch`]).
    HelpTouch(usize),
    /// Helper: certify the touched era into `slot`'s result word.
    HelpCert(usize),
    /// Owner (helping scenario): publish a help request on `slot`.
    Arm(usize),
    /// Owner: consume a certificate if present, else self-help (touch the
    /// access era directly).
    TryCert(usize),
    /// Owner: reload the shared link under the published/certified
    /// reservation.
    ReloadLink,
    /// Owner: validate the reservation — era must not have passed the
    /// certified (or self-published) value, else drop the hold.
    Validate(usize),
}

/// A modelled batch: birth era, signed reference running sum, flags.
#[derive(Debug, Clone)]
struct MBatch {
    birth: u64,
    nref: i64,
    freed: bool,
    retired: bool,
}

/// A modelled slot.
#[derive(Debug, Clone)]
struct MSlot {
    active: bool,
    access: u64,
    seq: usize,
    head: Vec<usize>,
    detached: Vec<usize>,
    cell: Option<(usize, usize)>, // (batch, tag)
    req: bool,
    cert: Option<u64>,
}

/// Per-thread registers.
#[derive(Debug, Clone, Default)]
struct Regs {
    hold: Option<usize>,
    will_insert: bool,
    tag: usize,
    inserts: i64,
    prev: Option<(usize, usize)>,
    adopted: Vec<(usize, usize, usize)>, // (slot, tag, batch)
    cert_cache: Option<u64>,
    self_era: Option<u64>,
    help_era: Option<u64>,
}

#[derive(Debug, Clone)]
struct CrystalState {
    slots: Vec<MSlot>,
    batches: Vec<MBatch>,
    link: Option<usize>,
    era: u64,
    pc: Vec<usize>,
    regs: Vec<Regs>,
}

/// A scenario: initial slots/batches/link plus one program per thread.
#[derive(Debug, Clone)]
pub struct CrystalScenario {
    /// Number of slots.
    pub slots: usize,
    /// `(birth, retired)` per batch. Non-retired batches model still-live
    /// nodes (never freed, exempt from the leak check).
    pub batches: Vec<(u64, bool)>,
    /// Initial shared-link contents.
    pub link: Option<usize>,
    /// Threads pre-entered into a slot: `(thread, slot)`.
    pub pre_entered: Vec<(usize, usize)>,
    /// Threads pre-holding a batch's node: `(thread, batch)`.
    pub pre_hold: Vec<(usize, usize)>,
    /// Per-thread step sequences.
    pub programs: Vec<Vec<CrystalOp>>,
    /// Injected protocol bug, if any.
    pub fault: Option<CrystalFault>,
    /// Human-readable description.
    pub name: String,
}

/// A safety violation found under some schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrystalViolation {
    /// What went wrong.
    pub message: String,
    /// The thread indices scheduled, in order, up to the violating step.
    pub schedule: Vec<usize>,
}

/// Result of exploring a [`CrystalScenario`].
#[derive(Debug, Clone)]
pub struct CrystalOutcome {
    /// Complete schedules explored.
    pub schedules: u64,
    /// First violation encountered, if any.
    pub violation: Option<CrystalViolation>,
    /// Whether the whole tree fit in the budget.
    pub complete: bool,
}

/// Applies a signed reference delta; frees the batch when the running sum
/// lands on zero (the model of the wrapping `NRef` zero-crossing).
fn apply_delta(
    state: &mut CrystalState,
    batch: usize,
    delta: i64,
    schedule: &[usize],
) -> Result<(), CrystalViolation> {
    let b = &mut state.batches[batch];
    if b.freed {
        return Err(CrystalViolation {
            message: format!(
                "double-free: reference delta {delta:+} applied to already-freed batch {batch}"
            ),
            schedule: schedule.to_vec(),
        });
    }
    b.nref += delta;
    if b.nref == 0 && b.retired {
        b.freed = true;
    }
    Ok(())
}

fn step(
    scenario: &CrystalScenario,
    state: &mut CrystalState,
    t: usize,
    schedule: &[usize],
) -> Result<(), CrystalViolation> {
    let fail = |message: String| CrystalViolation {
        message,
        schedule: schedule.to_vec(),
    };
    let op = scenario.programs[t][state.pc[t]];
    state.pc[t] += 1;
    match op {
        CrystalOp::Enter(s) => {
            state.slots[s].active = true;
        }
        CrystalOp::ReadLink => {
            state.regs[t].hold = state.link;
        }
        CrystalOp::Use => {
            if let Some(b) = state.regs[t].hold {
                if state.batches[b].freed {
                    return Err(fail(format!(
                        "use-after-free: thread {t} dereferenced a node of freed batch {b}"
                    )));
                }
            }
        }
        CrystalOp::LeaveBegin(s) => {
            let slot = &mut state.slots[s];
            slot.active = false;
            slot.seq += 1;
            slot.detached = std::mem::take(&mut slot.head);
            state.regs[t].hold = None;
        }
        CrystalOp::LeaveCollect(s) => {
            if let Some((b, _tag)) = state.slots[s].cell.take() {
                apply_delta(state, b, -1, schedule)?;
            }
        }
        CrystalOp::LeaveTraverse(s) => {
            for b in std::mem::take(&mut state.slots[s].detached) {
                apply_delta(state, b, -1, schedule)?;
            }
        }
        CrystalOp::LeaveAll(s) => {
            let slot = &mut state.slots[s];
            slot.active = false;
            slot.seq += 1;
            state.regs[t].hold = None;
            let cell = slot.cell.take();
            let detached = std::mem::take(&mut slot.head);
            if let Some((b, _tag)) = cell {
                apply_delta(state, b, -1, schedule)?;
            }
            for b in detached {
                apply_delta(state, b, -1, schedule)?;
            }
        }
        CrystalOp::Unlink => {
            state.link = None;
        }
        CrystalOp::Publish(b) => {
            state.batches[b].birth = state.era;
            state.link = Some(b);
        }
        CrystalOp::CheckSlot { slot, batch } => {
            let s = &state.slots[slot];
            state.regs[t].will_insert = s.active && s.access >= state.batches[batch].birth;
            state.regs[t].tag = s.seq;
        }
        CrystalOp::DepositCell { slot, batch } => {
            if !state.regs[t].will_insert {
                return Ok(());
            }
            let tag = state.regs[t].tag;
            // The unconditional swap: take the previous entry, install ours.
            state.regs[t].prev = state.slots[slot].cell.replace((batch, tag));
            if scenario.fault != Some(CrystalFault::ForgetHandoffInsert) {
                state.regs[t].inserts += 1;
            }
        }
        CrystalOp::Decide { slot } => {
            let Some((b, tag)) = state.regs[t].prev.take() else {
                return Ok(());
            };
            let release = scenario.fault == Some(CrystalFault::ReleaseWithoutTagCheck)
                || state.slots[slot].seq != tag;
            if release {
                apply_delta(state, b, -1, schedule)?;
            } else {
                state.regs[t].adopted.push((slot, tag, b));
            }
        }
        CrystalOp::InsertList { slot, batch } => {
            // The CAS can only succeed against the occupancy the check saw:
            // a leave swaps the head word, so re-verify activity.
            if state.regs[t].will_insert && state.slots[slot].active {
                state.slots[slot].head.push(batch);
                state.regs[t].inserts += 1;
            }
        }
        CrystalOp::AdjustRefs { batch } => {
            let inserts = std::mem::take(&mut state.regs[t].inserts);
            apply_delta(state, batch, inserts, schedule)?;
        }
        CrystalOp::RetryAdopted => {
            let adopted = std::mem::take(&mut state.regs[t].adopted);
            for (slot, tag, b) in adopted {
                if state.slots[slot].seq != tag {
                    apply_delta(state, b, -1, schedule)?;
                } else {
                    state.regs[t].adopted.push((slot, tag, b));
                }
            }
        }
        CrystalOp::AdvanceEra => {
            state.era += 1;
        }
        CrystalOp::HelpTouch(s) => {
            if state.slots[s].req {
                let e = state.era;
                if scenario.fault != Some(CrystalFault::CertifyWithoutTouch) {
                    let slot = &mut state.slots[s];
                    slot.access = slot.access.max(e);
                }
                state.regs[t].help_era = Some(e);
            }
        }
        CrystalOp::HelpCert(s) => {
            if let Some(e) = state.regs[t].help_era.take() {
                if state.slots[s].req && state.slots[s].cert.is_none() {
                    state.slots[s].cert = Some(e);
                }
            }
        }
        CrystalOp::Arm(s) => {
            state.slots[s].cert = None;
            state.slots[s].req = true;
        }
        CrystalOp::TryCert(s) => {
            if let Some(e) = state.slots[s].cert {
                state.regs[t].cert_cache = Some(e);
            } else {
                // Self-help: publish the reservation *before* the reload.
                let e = state.era;
                let slot = &mut state.slots[s];
                slot.access = slot.access.max(e);
                state.regs[t].self_era = Some(e);
            }
        }
        CrystalOp::ReloadLink => {
            state.regs[t].hold = state.link;
        }
        CrystalOp::Validate(s) => {
            let regs = &mut state.regs[t];
            let ok = match (regs.cert_cache.take(), regs.self_era.take()) {
                (Some(cert), _) => state.era <= cert,
                (None, Some(e)) => state.era == e,
                (None, None) => false,
            };
            if !ok {
                // A bounded model gives up instead of retrying; dropping the
                // hold is always safe.
                regs.hold = None;
            }
            state.slots[s].req = false;
        }
    }
    Ok(())
}

/// The deterministic domain-teardown sweep plus end-state invariants.
fn check_terminal(
    scenario: &CrystalScenario,
    state: &mut CrystalState,
    schedule: &[usize],
) -> Result<(), CrystalViolation> {
    // Domain drop: collect every cell entry and every still-adopted
    // (orphaned) entry, then verify the accounting converged.
    for s in 0..state.slots.len() {
        if let Some((b, _tag)) = state.slots[s].cell.take() {
            apply_delta(state, b, -1, schedule)?;
        }
    }
    for t in 0..state.regs.len() {
        let adopted = std::mem::take(&mut state.regs[t].adopted);
        for (_slot, _tag, b) in adopted {
            apply_delta(state, b, -1, schedule)?;
        }
    }
    for (i, b) in state.batches.iter().enumerate() {
        if !b.retired {
            continue;
        }
        if !b.freed {
            return Err(CrystalViolation {
                message: format!(
                    "leak: retired batch {i} never freed at quiescence (nref sum {}) in {}",
                    b.nref, scenario.name
                ),
                schedule: schedule.to_vec(),
            });
        }
        if b.nref != 0 {
            return Err(CrystalViolation {
                message: format!(
                    "imbalance: batch {i} freed but reference sum ended at {} in {}",
                    b.nref, scenario.name
                ),
                schedule: schedule.to_vec(),
            });
        }
    }
    Ok(())
}

fn dfs(
    scenario: &CrystalScenario,
    state: CrystalState,
    schedule: &mut Vec<usize>,
    outcome: &mut CrystalOutcome,
    budget: u64,
) {
    if outcome.violation.is_some() {
        return;
    }
    if outcome.schedules >= budget {
        outcome.complete = false;
        return;
    }
    let runnable: Vec<usize> = (0..scenario.programs.len())
        .filter(|&t| state.pc[t] < scenario.programs[t].len())
        .collect();
    if runnable.is_empty() {
        let mut terminal = state;
        if let Err(v) = check_terminal(scenario, &mut terminal, schedule) {
            outcome.violation = Some(v);
            return;
        }
        outcome.schedules += 1;
        return;
    }
    for t in runnable {
        let mut next = state.clone();
        schedule.push(t);
        match step(scenario, &mut next, t, schedule) {
            Ok(()) => dfs(scenario, next, schedule, outcome, budget),
            Err(v) => outcome.violation = Some(v),
        }
        schedule.pop();
        if outcome.violation.is_some() {
            return;
        }
    }
}

/// Explores every interleaving of `scenario` (up to `budget` complete
/// schedules), checking the Crystalline accounting invariants throughout.
pub fn explore(scenario: &CrystalScenario, budget: u64) -> CrystalOutcome {
    let mut state = CrystalState {
        slots: (0..scenario.slots)
            .map(|_| MSlot {
                active: false,
                access: 0,
                seq: 0,
                head: Vec::new(),
                detached: Vec::new(),
                cell: None,
                req: false,
                cert: None,
            })
            .collect(),
        batches: scenario
            .batches
            .iter()
            .map(|&(birth, retired)| MBatch {
                birth,
                nref: 0,
                freed: false,
                retired,
            })
            .collect(),
        link: scenario.link,
        era: 0,
        pc: vec![0; scenario.programs.len()],
        regs: vec![Regs::default(); scenario.programs.len()],
    };
    for &(t, s) in &scenario.pre_entered {
        let _ = t;
        state.slots[s].active = true;
    }
    for &(t, b) in &scenario.pre_hold {
        state.regs[t].hold = Some(b);
    }
    let mut outcome = CrystalOutcome {
        schedules: 0,
        violation: None,
        complete: true,
    };
    let mut schedule = Vec::new();
    dfs(scenario, state, &mut schedule, &mut outcome, budget);
    outcome
}

/// Two retirers handing off through the same occupied slot: the second
/// deposit displaces the first entry while the deposit-time occupant still
/// holds a node of the displaced batch. The tag check must force adoption;
/// releasing early is a use-after-free.
pub fn handoff_displacement(fault: Option<CrystalFault>) -> CrystalScenario {
    use CrystalOp::*;
    CrystalScenario {
        slots: 1,
        // Batch 0 ("A"): retired, a node of it is held by the occupant.
        // Batch 1 ("B"): retired by the second thread.
        batches: vec![(0, true), (0, true)],
        link: None,
        pre_entered: vec![(0, 0)],
        pre_hold: vec![(0, 0)],
        programs: vec![
            vec![Use, LeaveBegin(0), LeaveCollect(0), LeaveTraverse(0)],
            vec![
                CheckSlot { slot: 0, batch: 0 },
                DepositCell { slot: 0, batch: 0 },
                Decide { slot: 0 },
                AdjustRefs { batch: 0 },
            ],
            vec![
                CheckSlot { slot: 0, batch: 1 },
                DepositCell { slot: 0, batch: 1 },
                Decide { slot: 0 },
                AdjustRefs { batch: 1 },
                RetryAdopted,
            ],
        ],
        fault,
        name: format!("handoff_displacement(fault={fault:?})"),
    }
}

/// One retirer handing off while the occupant enters, reads the link, and
/// leaves: covers the activity-check race, floating entries deposited
/// around a leave, and collection at leave versus teardown.
pub fn handoff_occupancy_race(fault: Option<CrystalFault>) -> CrystalScenario {
    use CrystalOp::*;
    CrystalScenario {
        slots: 1,
        batches: vec![(0, true)],
        link: Some(0),
        pre_entered: Vec::new(),
        pre_hold: Vec::new(),
        programs: vec![
            vec![
                Enter(0),
                ReadLink,
                Use,
                LeaveBegin(0),
                LeaveCollect(0),
                LeaveTraverse(0),
            ],
            vec![
                Unlink,
                CheckSlot { slot: 0, batch: 0 },
                DepositCell { slot: 0, batch: 0 },
                Decide { slot: 0 },
                AdjustRefs { batch: 0 },
            ],
        ],
        fault,
        name: format!("handoff_occupancy_race(fault={fault:?})"),
    }
}

/// The Crystalline-W certification protocol: an owner arms a help request,
/// a helper touches-then-certifies around era advances, and a retirer
/// era-skips the slot. The certificate is sound only because the access
/// era is raised *before* it is written — the injected
/// [`CrystalFault::CertifyWithoutTouch`] breaks exactly that edge.
pub fn helping_certification(fault: Option<CrystalFault>) -> CrystalScenario {
    use CrystalOp::*;
    CrystalScenario {
        slots: 1,
        // Batch 0: the pre-published node (never retired here).
        // Batch 1: published then retired era-fresh by the retirer.
        // Batch 2: the replacement left live in the link.
        batches: vec![(0, false), (0, true), (0, false)],
        link: Some(0),
        pre_entered: vec![(0, 0)],
        pre_hold: vec![],
        programs: vec![
            vec![
                Arm(0),
                TryCert(0),
                ReloadLink,
                Validate(0),
                Use,
                LeaveAll(0),
            ],
            vec![
                Publish(1),
                Publish(2),
                CheckSlot { slot: 0, batch: 1 },
                InsertList { slot: 0, batch: 1 },
                AdjustRefs { batch: 1 },
            ],
            vec![AdvanceEra, HelpTouch(0), HelpCert(0), AdvanceEra],
        ],
        fault,
        name: format!("helping_certification(fault={fault:?})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handoff_displacement_is_safe() {
        let outcome = explore(&handoff_displacement(None), 2_000_000);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.complete, "exploration must be exhaustive");
        assert!(outcome.schedules > 0);
    }

    #[test]
    fn handoff_occupancy_race_is_safe() {
        let outcome = explore(&handoff_occupancy_race(None), 2_000_000);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.complete, "exploration must be exhaustive");
        assert!(outcome.schedules > 0);
    }

    #[test]
    fn helping_certification_is_safe() {
        let outcome = explore(&helping_certification(None), 5_000_000);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.complete, "exploration must be exhaustive");
        assert!(outcome.schedules > 0);
    }

    #[test]
    fn release_without_tag_check_is_caught() {
        let outcome = explore(
            &handoff_displacement(Some(CrystalFault::ReleaseWithoutTagCheck)),
            2_000_000,
        );
        let v = outcome.violation.expect("the unconditional release must break");
        assert!(
            v.message.contains("use-after-free") || v.message.contains("double-free"),
            "unexpected violation: {}",
            v.message
        );
    }

    #[test]
    fn forgotten_handoff_reference_is_caught() {
        let outcome = explore(
            &handoff_displacement(Some(CrystalFault::ForgetHandoffInsert)),
            2_000_000,
        );
        let v = outcome.violation.expect("the missing +1 must break");
        assert!(
            v.message.contains("use-after-free") || v.message.contains("double-free"),
            "unexpected violation: {}",
            v.message
        );
    }

    #[test]
    fn forgotten_handoff_reference_is_caught_in_occupancy_race() {
        let outcome = explore(
            &handoff_occupancy_race(Some(CrystalFault::ForgetHandoffInsert)),
            2_000_000,
        );
        assert!(
            outcome.violation.is_some(),
            "the missing +1 must break some schedule"
        );
    }

    #[test]
    fn certify_without_touch_is_caught() {
        let outcome = explore(
            &helping_certification(Some(CrystalFault::CertifyWithoutTouch)),
            5_000_000,
        );
        let v = outcome.violation.expect("the unpublished certificate must break");
        assert!(
            v.message.contains("use-after-free"),
            "unexpected violation: {}",
            v.message
        );
    }
}
