//! An executable model of the Hyaline algorithms at atomic-step granularity.
//!
//! The model tracks *batches* (the paper's reclamation unit) rather than
//! individual nodes: a batch record carries the `NRef` counter held by the
//! REFS node, one retirement-list link per slot (the `Next` of the batch's
//! per-slot insertion node), and the stored `Adjs` constant (§4.3). Every
//! transition of a thread's state machine performs exactly one atomic
//! action — one head load, one CAS, one FAA — so the
//! [`Explorer`](crate::Explorer) interleaves the algorithms at the same granularity the
//! hardware does (under sequential consistency).
//!
//! Safety checks are wired into the semantics:
//!
//! * reading any field of a freed batch is a model violation (use after
//!   free),
//! * a reference count crossing zero on an already-freed batch is a model
//!   violation (double free), and
//! * [`HyalineModel::finish`] requires every retired batch freed, every
//!   head empty, and every counter back at zero (leaks, lost adjustments).

use std::fmt;

/// Which algorithm the model executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The general multi-slot algorithm (Figure 3): `[HRef, HPtr]` heads,
    /// `Adjs` wrap-around accounting, empty-slot adjustments.
    Hyaline,
    /// The single-width specialization (Figure 4): one slot per thread, an
    /// active bit instead of a counter, `Inserts` counting.
    Hyaline1,
    /// The robust extension (Figure 5): batches carry birth eras, `deref`
    /// raises the calling slot's access era, and `retire` skips slots whose
    /// access era is older than the batch's minimum birth era — which is
    /// what lets reclamation proceed past *stalled* threads
    /// ([`Op::Stall`]). The model uses `Freq = 1` (the clock advances on
    /// every allocation) and one node per batch, so `min_birth` is the
    /// batch's own birth era.
    HyalineS,
}

/// Deliberate algorithm mutations, used to validate that the explorer
/// actually detects broken accounting (mutation testing of the checker).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fault {
    /// Faithful algorithm.
    #[default]
    None,
    /// `retire` skips the final empty-slot adjustment (drops Figure 3's
    /// REF `#3#`): batches retired while some slot is empty never complete
    /// their `k × Adjs` wrap-around and leak.
    SkipEmptyAdjust,
    /// The predecessor credit adds only the `HRef` snapshot without `Adjs`
    /// (breaks Figure 3's REF `#2#`): counters cross zero early, freeing
    /// batches that active threads still traverse.
    NoAdjsInPredecessorCredit,
    /// `leave` decrements `HRef` but never detaches the list when it is the
    /// last reference, so the final per-slot `Adjs` is lost.
    NoDetachOnLastLeave,
    /// Hyaline-S inserts into every active slot regardless of eras
    /// (drops Figure 5's `Access < Min` skip): batches land in stalled
    /// threads' retirement lists and are pinned forever — the robustness
    /// property the eras exist to provide.
    IgnoreBirthEras,
}

/// One operation of a thread's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `enter` through the given slot.
    Enter(usize),
    /// Retire one freshly allocated batch.
    Retire,
    /// `leave` the current operation.
    Leave,
    /// §3.3 `trim`: dereference the sublist without touching the head.
    Trim,
    /// Figure 5's `deref`: raise the current slot's access era to the
    /// global clock ([`Variant::HyalineS`] only; a no-op elsewhere).
    Deref,
    /// Park this thread forever *inside* its current operation (the
    /// robustness adversary of Figure 10a). The thread takes no further
    /// steps; see [`HyalineModel::finish`] for the relaxed end-state
    /// invariants.
    Stall,
}

/// A thread's program: the sequence of operations it will perform.
pub type ThreadProgram = Vec<Op>;

/// Model configuration.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Number of slots `k`. Must be a power of two for [`Variant::Hyaline`];
    /// for [`Variant::Hyaline1`] it must equal the number of threads.
    pub slots: usize,
    /// Which algorithm to run.
    pub variant: Variant,
    /// Optional deliberate bug (see [`Fault`]).
    pub fault: Fault,
}

/// The paper's `Adjs` constant for `k` slots: `2^64 / k` so that
/// `k × Adjs ≡ 0 (mod 2^64)`.
fn adjs_for(k: usize) -> u64 {
    debug_assert!(k.is_power_of_two());
    (u64::MAX / k as u64).wrapping_add(1)
}

/// A batch record: the model's reclamation unit.
#[derive(Debug, Clone)]
struct Batch {
    /// The `NRef` counter (wrapping, as in the algorithm).
    nref: u64,
    /// Per-slot retirement-list link (`Next` of the batch's insertion node
    /// for that slot).
    next: Vec<Option<usize>>,
    /// The `Adjs` this batch was retired under (§4.3 stores it per batch).
    adjs: u64,
    /// Whether the batch has been freed.
    freed: bool,
    /// Birth era (Hyaline-S; 0 elsewhere).
    birth: u64,
    /// Bitmask of slots whose retirement list this batch was inserted into.
    inserted: u64,
}

/// A `[HRef, HPtr]` head (Figure 3) — updated atomically as a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Head {
    href: u64,
    ptr: Option<usize>,
}

/// A Hyaline-1 head: active bit plus pointer (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Head1 {
    active: bool,
    ptr: Option<usize>,
}

/// Micro-state of one thread: where inside a (multi-step) operation it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Micro {
    /// Between operations: the next program `Op` starts on the next step.
    Ready,
    /// `retire`, about to load the head of `slot` (Figure 3 lines 30–34).
    RetireLoad {
        batch: usize,
        slot: usize,
        empty_adjs: u64,
        any_empty: bool,
        inserts: u64,
    },
    /// `retire`, about to CAS `slot`'s head from the snapshot (line 38).
    RetireCas {
        batch: usize,
        slot: usize,
        empty_adjs: u64,
        any_empty: bool,
        inserts: u64,
        snapshot: Head,
    },
    /// `retire`, about to credit the predecessor (line 39, REF `#2#`).
    RetireAdjustPred {
        batch: usize,
        slot: usize,
        empty_adjs: u64,
        any_empty: bool,
        inserts: u64,
        pred: usize,
        href_snapshot: u64,
    },
    /// `retire`, about to apply the empty-slot / `Inserts` adjustment
    /// (line 40, REF `#3#`).
    RetireFinalAdjust { batch: usize, val: u64 },
    /// `leave`, about to load the head (Figure 3 line 8).
    LeaveLoad,
    /// `leave`, about to read `Curr->Next` (line 11) — the read the paper
    /// licenses because an active thread always references the list head.
    LeaveReadNext { snapshot: Head },
    /// `leave`, about to CAS the decremented head (line 15).
    LeaveCas {
        snapshot: Head,
        next: Option<usize>,
    },
    /// `leave`, about to apply the detach adjustment (line 17).
    LeaveDetachAdjust {
        curr: usize,
        next: Option<usize>,
        traverse: bool,
    },
    /// `trim`, about to load the head (line 21).
    TrimLoad,
    /// `trim`, about to read `Curr->Next` (line 24).
    TrimReadNext { snapshot: Head },
    /// Walking the retirement sublist (lines 44–51): about to decrement
    /// `at`, stopping after the handle batch (inclusive).
    Traverse {
        at: Option<usize>,
        stop_at: Option<usize>,
        /// `trim` updates the handle to the old head when done.
        new_handle: Option<Option<usize>>,
    },
    /// Hyaline-1 `retire`: about to load slot `slot`'s head.
    Retire1Load {
        batch: usize,
        slot: usize,
        inserts: u64,
    },
    /// Hyaline-1 `retire`: about to CAS slot `slot`'s head.
    Retire1Cas {
        batch: usize,
        slot: usize,
        inserts: u64,
        snapshot: Head1,
    },
}

/// Per-thread state.
#[derive(Debug, Clone)]
struct Thread {
    program: ThreadProgram,
    pc: usize,
    micro: Micro,
    /// The `HPtr` snapshot taken at `enter` (None = empty list).
    handle: Option<usize>,
    /// The slot of the current operation.
    slot: usize,
    active: bool,
    /// Parked forever by [`Op::Stall`].
    stalled: bool,
}

/// The executable model. Drive it with [`HyalineModel::step`]; terminate
/// with [`HyalineModel::finish`].
///
/// # Example
///
/// ```
/// use interleave::model::{HyalineModel, ModelConfig, Op, Variant, Fault};
///
/// let mut m = HyalineModel::new(
///     ModelConfig { slots: 1, variant: Variant::Hyaline, fault: Fault::None },
///     vec![vec![Op::Enter(0), Op::Retire, Op::Leave]],
/// );
/// while !m.enabled().is_empty() {
///     m.step(0).unwrap();
/// }
/// m.finish().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct HyalineModel {
    config: ModelConfig,
    heads: Vec<Head>,
    heads1: Vec<Head1>,
    batches: Vec<Batch>,
    threads: Vec<Thread>,
    adjs: u64,
    /// Global era clock (Hyaline-S).
    clock: u64,
    /// Per-slot access eras (Hyaline-S).
    access: Vec<u64>,
}

impl HyalineModel {
    /// Builds the model for `programs`, one per thread.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration (zero or non-power-of-two slot count
    /// for [`Variant::Hyaline`]; slot out of range in a program).
    pub fn new(config: ModelConfig, programs: Vec<ThreadProgram>) -> Self {
        assert!(config.slots > 0, "need at least one slot");
        if matches!(config.variant, Variant::Hyaline | Variant::HyalineS) {
            assert!(config.slots.is_power_of_two(), "k must be a power of two");
        }
        assert!(
            config.slots <= 64,
            "the per-batch insertion mask holds at most 64 slots"
        );
        for p in &programs {
            for op in p {
                if let Op::Enter(s) = op {
                    assert!(*s < config.slots, "slot {s} out of range");
                }
            }
        }
        let adjs = match config.variant {
            Variant::Hyaline | Variant::HyalineS => adjs_for(config.slots),
            Variant::Hyaline1 => 0,
        };
        Self {
            heads: vec![
                Head {
                    href: 0,
                    ptr: None
                };
                config.slots
            ],
            heads1: vec![
                Head1 {
                    active: false,
                    ptr: None
                };
                config.slots
            ],
            batches: Vec::new(),
            threads: programs
                .into_iter()
                .map(|program| Thread {
                    program,
                    pc: 0,
                    micro: Micro::Ready,
                    handle: None,
                    slot: 0,
                    active: false,
                    stalled: false,
                })
                .collect(),
            clock: 0,
            access: vec![0; config.slots],
            config,
            adjs,
        }
    }

    /// Thread ids that still have steps to take.
    pub fn enabled(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| self.is_enabled(t))
            .collect()
    }

    #[inline]
    fn is_enabled(&self, t: usize) -> bool {
        let th = &self.threads[t];
        !th.stalled && (th.micro != Micro::Ready || th.pc < th.program.len())
    }

    /// Number of threads that still have steps to take (allocation-free).
    pub fn enabled_count(&self) -> usize {
        (0..self.threads.len()).filter(|&t| self.is_enabled(t)).count()
    }

    /// The `idx`-th enabled thread id, if any (allocation-free).
    pub fn nth_enabled(&self, idx: usize) -> Option<usize> {
        (0..self.threads.len()).filter(|&t| self.is_enabled(t)).nth(idx)
    }

    /// Number of batches created so far.
    pub fn batches_created(&self) -> usize {
        self.batches.len()
    }

    /// Number of batches freed so far.
    pub fn batches_freed(&self) -> usize {
        self.batches.iter().filter(|b| b.freed).count()
    }

    fn batch(&self, idx: usize, why: &str) -> Result<&Batch, String> {
        let b = &self.batches[idx];
        if b.freed {
            return Err(format!("use after free: {why} touched freed batch {idx}"));
        }
        Ok(b)
    }

    /// Where `retire` goes after finishing `slot - 1`: the next slot's load,
    /// the final empty-slot adjustment, or done. (Pure control flow — the
    /// returned state's action happens on the *next* step.)
    fn retire_advance(
        &self,
        batch: usize,
        slot: usize,
        empty_adjs: u64,
        any_empty: bool,
        inserts: u64,
    ) -> Micro {
        if slot < self.config.slots {
            return Micro::RetireLoad {
                batch,
                slot,
                empty_adjs,
                any_empty,
                inserts,
            };
        }
        if any_empty && self.config.fault != Fault::SkipEmptyAdjust {
            // REF #3#: contribute the skipped slots' Adjs in one shot.
            return Micro::RetireFinalAdjust {
                batch,
                val: empty_adjs,
            };
        }
        Micro::Ready
    }

    /// Hyaline-1's equivalent: next slot, or the final `Inserts` adjustment
    /// (Figure 4 always adjusts — `inserts == 0` frees the batch at once).
    fn retire1_advance(&self, batch: usize, slot: usize, inserts: u64) -> Micro {
        if slot < self.config.slots {
            Micro::Retire1Load {
                batch,
                slot,
                inserts,
            }
        } else {
            Micro::RetireFinalAdjust {
                batch,
                val: inserts,
            }
        }
    }

    /// Traversal continuation: a [`Micro::Traverse`] when there is a batch
    /// to visit, otherwise finish (updating the handle for `trim`).
    fn traverse_advance(
        &mut self,
        tid: usize,
        at: Option<usize>,
        stop_at: Option<usize>,
        new_handle: Option<Option<usize>>,
    ) -> Micro {
        match at {
            Some(_) => Micro::Traverse {
                at,
                stop_at,
                new_handle,
            },
            None => {
                self.threads[tid].handle = new_handle.unwrap_or(None);
                Micro::Ready
            }
        }
    }

    /// The paper's `adjust`: wrapping FAA on a batch's `NRef`; frees the
    /// batch when the post-add value is zero.
    fn adjust(&mut self, idx: usize, val: u64, why: &str) -> Result<(), String> {
        {
            let b = &self.batches[idx];
            if b.freed {
                return Err(format!(
                    "use after free: {why} adjusted freed batch {idx} by {val:#x}"
                ));
            }
        }
        let b = &mut self.batches[idx];
        b.nref = b.nref.wrapping_add(val);
        if b.nref == 0 {
            if b.freed {
                return Err(format!("double free of batch {idx} ({why})"));
            }
            b.freed = true;
        }
        Ok(())
    }

    /// Executes one atomic action of thread `tid`.
    ///
    /// # Errors
    ///
    /// Returns a description of the safety violation (use after free,
    /// double free, protocol assertion) if this step exhibits one.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is not currently enabled.
    pub fn step(&mut self, tid: usize) -> Result<(), String> {
        let micro = self.threads[tid].micro;
        match micro {
            Micro::Ready => self.begin_op(tid),
            m => self.continue_op(tid, m),
        }
    }

    /// Starts the next program operation (consumes its first atomic step).
    fn begin_op(&mut self, tid: usize) -> Result<(), String> {
        let th = &self.threads[tid];
        assert!(th.pc < th.program.len(), "stepping a finished thread");
        let op = th.program[th.pc];
        self.threads[tid].pc += 1;
        match op {
            Op::Enter(slot) => match self.config.variant {
                Variant::Hyaline | Variant::HyalineS => {
                    // Figure 3 line 4: one FAA on the [HRef, HPtr] tuple.
                    if self.threads[tid].active {
                        return Err(format!("thread {tid}: enter while active"));
                    }
                    let old = self.heads[slot];
                    self.heads[slot].href += 1;
                    let th = &mut self.threads[tid];
                    th.handle = old.ptr;
                    th.slot = slot;
                    th.active = true;
                    Ok(())
                }
                Variant::Hyaline1 => {
                    if self.threads[tid].active {
                        return Err(format!("thread {tid}: enter while active"));
                    }
                    let old = self.heads1[slot];
                    if old
                        != (Head1 {
                            active: false,
                            ptr: None,
                        })
                    {
                        return Err(format!(
                            "thread {tid}: slot {slot} not quiescent at enter: {old:?}"
                        ));
                    }
                    self.heads1[slot] = Head1 {
                        active: true,
                        ptr: None,
                    };
                    let th = &mut self.threads[tid];
                    th.handle = None;
                    th.slot = slot;
                    th.active = true;
                    Ok(())
                }
            },
            Op::Retire => {
                if !self.threads[tid].active {
                    return Err(format!("thread {tid}: retire outside an operation"));
                }
                // Allocate the batch (thread-local until first CAS publish).
                // For Hyaline-S this is Figure 5's init_node with Freq = 1
                // (advance the clock, stamp the birth era) — and the
                // retiring thread necessarily dereferenced the node to unlink it, so
                // its own slot's access era is raised too (the deref that
                // accompanied the unlink). Other slots keep whatever their
                // last Deref published.
                let birth = if self.config.variant == Variant::HyalineS {
                    self.clock += 1;
                    let slot = self.threads[tid].slot;
                    if self.access[slot] < self.clock {
                        self.access[slot] = self.clock;
                    }
                    self.clock
                } else {
                    0
                };
                let batch = self.batches.len();
                self.batches.push(Batch {
                    nref: 0,
                    next: vec![None; self.config.slots],
                    adjs: self.adjs,
                    freed: false,
                    birth,
                    inserted: 0,
                });
                self.threads[tid].micro = match self.config.variant {
                    Variant::Hyaline | Variant::HyalineS => Micro::RetireLoad {
                        batch,
                        slot: 0,
                        empty_adjs: 0,
                        any_empty: false,
                        inserts: 0,
                    },
                    Variant::Hyaline1 => Micro::Retire1Load {
                        batch,
                        slot: 0,
                        inserts: 0,
                    },
                };
                // Allocation itself is local; the first shared action happens
                // on the next step. Take the first load now so every step
                // performs one shared action.
                let micro = self.threads[tid].micro;
                self.continue_op(tid, micro)
            }
            Op::Leave => {
                if !self.threads[tid].active {
                    return Err(format!("thread {tid}: leave outside an operation"));
                }
                self.threads[tid].active = false;
                match self.config.variant {
                    Variant::Hyaline | Variant::HyalineS => {
                        // First atomic action: load the head (line 8).
                        self.threads[tid].micro = Micro::LeaveLoad;
                        self.continue_op(tid, Micro::LeaveLoad)
                    }
                    Variant::Hyaline1 => {
                        // Figure 4 line 5: one swap detaches the whole list.
                        let slot = self.threads[tid].slot;
                        let old = self.heads1[slot];
                        self.heads1[slot] = Head1 {
                            active: false,
                            ptr: None,
                        };
                        let handle = self.threads[tid].handle;
                        self.threads[tid].handle = None;
                        self.threads[tid].micro =
                            self.traverse_advance(tid, old.ptr, handle, None);
                        Ok(())
                    }
                }
            }
            Op::Deref => {
                if !self.threads[tid].active {
                    return Err(format!("thread {tid}: deref outside an operation"));
                }
                // Figure 5's touch: raise this slot's access era to the
                // current clock (one CAS-max; the model is SC, so a plain
                // max-store models it).
                let slot = self.threads[tid].slot;
                let clock = self.clock;
                if self.access[slot] < clock {
                    self.access[slot] = clock;
                }
                Ok(())
            }
            Op::Stall => {
                if !self.threads[tid].active {
                    return Err(format!("thread {tid}: stall outside an operation"));
                }
                self.threads[tid].stalled = true;
                Ok(())
            }
            Op::Trim => {
                if !self.threads[tid].active {
                    return Err(format!("thread {tid}: trim outside an operation"));
                }
                match self.config.variant {
                    Variant::Hyaline | Variant::HyalineS => {
                        self.threads[tid].micro = Micro::TrimLoad;
                        self.continue_op(tid, Micro::TrimLoad)
                    }
                    Variant::Hyaline1 => {
                        // Hyaline-1 trim: load the head (sole owner, no CAS).
                        let slot = self.threads[tid].slot;
                        let head = self.heads1[slot];
                        let handle = self.threads[tid].handle;
                        if head.ptr != handle {
                            let curr = head.ptr.expect("non-handle head is non-null");
                            self.threads[tid].micro = Micro::TrimReadNext {
                                snapshot: Head {
                                    href: 1,
                                    ptr: Some(curr),
                                },
                            };
                        }
                        Ok(())
                    }
                }
            }
        }
    }

    /// Executes one atomic action inside a multi-step operation.
    #[allow(clippy::too_many_lines)]
    fn continue_op(&mut self, tid: usize, micro: Micro) -> Result<(), String> {
        match micro {
            Micro::Ready => unreachable!("continue_op on Ready"),

            // ------------------------- Hyaline retire -----------------------
            Micro::RetireLoad {
                batch,
                slot,
                mut empty_adjs,
                mut any_empty,
                inserts,
            } => {
                debug_assert!(slot < self.config.slots);
                let head = self.heads[slot];
                // Figure 5's replacement for REF #1#: skip slots with no
                // active thread *or* whose access era predates the batch's
                // minimum birth era (no thread there can reference it).
                let era_stale = self.config.variant == Variant::HyalineS
                    && self.config.fault != Fault::IgnoreBirthEras
                    && self.access[slot] < self.batches[batch].birth;
                if head.href == 0 || era_stale {
                    any_empty = true;
                    empty_adjs = empty_adjs.wrapping_add(self.adjs);
                    self.threads[tid].micro =
                        self.retire_advance(batch, slot + 1, empty_adjs, any_empty, inserts);
                } else {
                    self.threads[tid].micro = Micro::RetireCas {
                        batch,
                        slot,
                        empty_adjs,
                        any_empty,
                        inserts,
                        snapshot: head,
                    };
                }
                Ok(())
            }
            Micro::RetireCas {
                batch,
                slot,
                empty_adjs,
                any_empty,
                inserts,
                snapshot,
            } => {
                if self.heads[slot] != snapshot {
                    // CAS failure: re-load (Figure 3's retry loop).
                    self.threads[tid].micro = Micro::RetireLoad {
                        batch,
                        slot,
                        empty_adjs,
                        any_empty,
                        inserts,
                    };
                    return Ok(());
                }
                // The insertion node's Next was written just before the CAS.
                self.batches[batch].next[slot] = snapshot.ptr;
                self.batches[batch].inserted |= 1 << slot;
                self.heads[slot] = Head {
                    href: snapshot.href,
                    ptr: Some(batch),
                };
                match snapshot.ptr {
                    Some(pred) => {
                        self.threads[tid].micro = Micro::RetireAdjustPred {
                            batch,
                            slot,
                            empty_adjs,
                            any_empty,
                            inserts,
                            pred,
                            href_snapshot: snapshot.href,
                        };
                    }
                    None => {
                        self.threads[tid].micro =
                            self.retire_advance(batch, slot + 1, empty_adjs, any_empty, inserts);
                    }
                }
                Ok(())
            }
            Micro::RetireAdjustPred {
                batch,
                slot,
                empty_adjs,
                any_empty,
                inserts,
                pred,
                href_snapshot,
            } => {
                // REF #2#: credit the predecessor with Adjs + HRef snapshot.
                let pred_adjs = self.batch(pred, "predecessor credit")?.adjs;
                let val = if self.config.fault == Fault::NoAdjsInPredecessorCredit {
                    href_snapshot
                } else {
                    pred_adjs.wrapping_add(href_snapshot)
                };
                self.adjust(pred, val, "predecessor credit")?;
                self.threads[tid].micro =
                    self.retire_advance(batch, slot + 1, empty_adjs, any_empty, inserts);
                Ok(())
            }
            Micro::RetireFinalAdjust { batch, val } => {
                self.adjust(batch, val, "final retire adjustment")?;
                self.threads[tid].micro = Micro::Ready;
                Ok(())
            }

            // ------------------------- Hyaline leave ------------------------
            Micro::LeaveLoad => {
                let slot = self.threads[tid].slot;
                let head = self.heads[slot];
                if head.ptr != self.threads[tid].handle {
                    self.threads[tid].micro = Micro::LeaveReadNext { snapshot: head };
                } else {
                    self.threads[tid].micro = Micro::LeaveCas {
                        snapshot: head,
                        next: None,
                    };
                    let m = self.threads[tid].micro;
                    return self.continue_op(tid, m);
                }
                Ok(())
            }
            Micro::LeaveReadNext { snapshot } => {
                // Figure 3 line 11: reading Curr->Next is licensed because an
                // active thread holds a reference to the head of its list —
                // the model verifies exactly that claim.
                let slot = self.threads[tid].slot;
                let curr = snapshot.ptr.expect("non-handle head is non-null");
                let next = self.batch(curr, "leave's Curr->Next read")?.next[slot];
                self.threads[tid].micro = Micro::LeaveCas { snapshot, next };
                Ok(())
            }
            Micro::LeaveCas { snapshot, next } => {
                let slot = self.threads[tid].slot;
                if self.heads[slot] != snapshot {
                    self.threads[tid].micro = Micro::LeaveLoad;
                    return Ok(());
                }
                let last = snapshot.href == 1;
                let detach = last && self.config.fault != Fault::NoDetachOnLastLeave;
                self.heads[slot] = Head {
                    href: snapshot.href - 1,
                    ptr: if detach { None } else { snapshot.ptr },
                };
                let handle = self.threads[tid].handle;
                let traverse = snapshot.ptr != handle;
                self.threads[tid].micro = match snapshot.ptr {
                    // Line 17: the detached head never gets a successor; give
                    // it its final per-slot Adjs (then traverse if needed).
                    Some(curr) if detach => Micro::LeaveDetachAdjust {
                        curr,
                        next,
                        traverse,
                    },
                    Some(_) if traverse => self.traverse_advance(tid, next, handle, None),
                    _ => {
                        self.threads[tid].handle = None;
                        Micro::Ready
                    }
                };
                Ok(())
            }
            Micro::LeaveDetachAdjust {
                curr,
                next,
                traverse,
            } => {
                let adjs = self.batch(curr, "detach adjustment")?.adjs;
                self.adjust(curr, adjs, "detach adjustment")?;
                if traverse {
                    let handle = self.threads[tid].handle;
                    self.threads[tid].micro = self.traverse_advance(tid, next, handle, None);
                } else {
                    self.threads[tid].micro = Micro::Ready;
                    self.threads[tid].handle = None;
                }
                Ok(())
            }

            // ------------------------- Hyaline trim -------------------------
            Micro::TrimLoad => {
                let slot = self.threads[tid].slot;
                let head = self.heads[slot];
                if head.ptr != self.threads[tid].handle {
                    self.threads[tid].micro = Micro::TrimReadNext { snapshot: head };
                } else {
                    self.threads[tid].micro = Micro::Ready;
                }
                Ok(())
            }
            Micro::TrimReadNext { snapshot } => {
                let slot = self.threads[tid].slot;
                let curr = snapshot.ptr.expect("non-handle head is non-null");
                let next = self.batch(curr, "trim's Curr->Next read")?.next[slot];
                let handle = self.threads[tid].handle;
                self.threads[tid].micro =
                    self.traverse_advance(tid, next, handle, Some(Some(curr)));
                Ok(())
            }

            // ------------------------- traverse ----------------------------
            Micro::Traverse {
                at,
                stop_at,
                new_handle,
            } => {
                let slot = self.threads[tid].slot;
                let curr = at.expect("Traverse is only constructed with a batch to visit");
                let next = self.batch(curr, "traverse link read")?.next[slot];
                self.adjust(curr, 1u64.wrapping_neg(), "traverse decrement")?;
                if Some(curr) == stop_at {
                    self.threads[tid].handle = new_handle.unwrap_or(None);
                    self.threads[tid].micro = Micro::Ready;
                } else {
                    self.threads[tid].micro =
                        self.traverse_advance(tid, next, stop_at, new_handle);
                }
                Ok(())
            }

            // ------------------------- Hyaline-1 retire ---------------------
            Micro::Retire1Load {
                batch,
                slot,
                inserts,
            } => {
                debug_assert!(slot < self.config.slots);
                let head = self.heads1[slot];
                if !head.active {
                    self.threads[tid].micro = self.retire1_advance(batch, slot + 1, inserts);
                } else {
                    self.threads[tid].micro = Micro::Retire1Cas {
                        batch,
                        slot,
                        inserts,
                        snapshot: head,
                    };
                }
                Ok(())
            }
            Micro::Retire1Cas {
                batch,
                slot,
                inserts,
                snapshot,
            } => {
                if self.heads1[slot] != snapshot {
                    self.threads[tid].micro = Micro::Retire1Load {
                        batch,
                        slot,
                        inserts,
                    };
                    return Ok(());
                }
                self.batches[batch].next[slot] = snapshot.ptr;
                self.batches[batch].inserted |= 1 << slot;
                self.heads1[slot] = Head1 {
                    active: true,
                    ptr: Some(batch),
                };
                self.threads[tid].micro = self.retire1_advance(batch, slot + 1, inserts + 1);
                Ok(())
            }
        }
    }

    /// End-of-run invariants.
    ///
    /// Without stalled threads: every batch freed exactly once, every head
    /// quiescent, every thread outside an operation.
    ///
    /// With [`Op::Stall`]ed threads, the invariants become the paper's
    /// robustness claims (Theorem 4): a slot hosting stalled threads keeps
    /// exactly their `HRef` contributions; an unreclaimed batch must be
    /// *legitimately pinned* — inserted into some stalled thread's slot
    /// whose access era covered the batch's birth (for Hyaline-S, that is
    /// only possible when the slot's era was fresh at insertion time; a
    /// batch whose birth era outruns every stalled slot **must** have been
    /// reclaimed, which is exactly what [`Fault::IgnoreBirthEras`] breaks).
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    pub fn finish(&self) -> Result<(), String> {
        let any_stalled = self.threads.iter().any(|t| t.stalled);
        for (t, th) in self.threads.iter().enumerate() {
            if th.stalled {
                continue;
            }
            if th.active || th.micro != Micro::Ready || th.pc < th.program.len() {
                return Err(format!("thread {t} finished mid-operation"));
            }
        }
        // Per-slot count of parked threads (their HRef units never return).
        let mut stalled_in_slot = vec![0u64; self.config.slots];
        let mut stalled_slots: u64 = 0;
        for th in self.threads.iter().filter(|t| t.stalled) {
            stalled_in_slot[th.slot] += 1;
            stalled_slots |= 1 << th.slot;
        }
        if matches!(self.config.variant, Variant::Hyaline | Variant::HyalineS) {
            for (i, head) in self.heads.iter().enumerate() {
                if head.href != stalled_in_slot[i] {
                    return Err(format!(
                        "slot {i} HRef {} at exit, expected {} (stalled threads)",
                        head.href, stalled_in_slot[i]
                    ));
                }
                if head.ptr.is_some() && stalled_in_slot[i] == 0 {
                    return Err(format!("slot {i} not quiescent at exit: {head:?}"));
                }
            }
        }
        if self.config.variant == Variant::Hyaline1 {
            for (i, head) in self.heads1.iter().enumerate() {
                let parked = stalled_in_slot[i] > 0;
                if head.active != parked || (head.ptr.is_some() && !parked) {
                    return Err(format!("slot {i} not quiescent at exit: {head:?}"));
                }
            }
        }
        for (i, b) in self.batches.iter().enumerate() {
            if !b.freed {
                if !any_stalled {
                    return Err(format!(
                        "leak: batch {i} never freed (NRef = {:#x})",
                        b.nref
                    ));
                }
                let legitimately_pinned = (0..self.config.slots).any(|s| {
                    stalled_slots & (1 << s) != 0
                        && b.inserted & (1 << s) != 0
                        && b.birth <= self.access[s]
                });
                if !legitimately_pinned {
                    return Err(format!(
                        "robustness violation: batch {i} (birth {}) unreclaimed but not \
                         pinned by any stalled slot (inserted {:#b}, stalled {stalled_slots:#b})",
                        b.birth, b.inserted
                    ));
                }
            } else if b.nref != 0 {
                return Err(format!(
                    "batch {i} freed with non-zero NRef {:#x}",
                    b.nref
                ));
            }
        }
        Ok(())
    }
}

impl fmt::Display for HyalineModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:?} k={} batches={} freed={}",
            self.config.variant,
            self.config.slots,
            self.batches.len(),
            self.batches_freed()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_sequential(mut m: HyalineModel) -> HyalineModel {
        // Round-robin until everything terminates.
        loop {
            let enabled = m.enabled();
            if enabled.is_empty() {
                break;
            }
            m.step(enabled[0]).expect("no violation expected");
        }
        m
    }

    #[test]
    fn adjs_constant() {
        assert_eq!(adjs_for(1), 0);
        assert_eq!(adjs_for(2), 1 << 63);
        assert_eq!(adjs_for(8), 1 << 61);
    }

    #[test]
    fn single_thread_single_slot_reclaims() {
        let m = HyalineModel::new(
            ModelConfig {
                slots: 1,
                variant: Variant::Hyaline,
                fault: Fault::None,
            },
            vec![vec![Op::Enter(0), Op::Retire, Op::Leave]],
        );
        let m = run_sequential(m);
        assert_eq!(m.batches_created(), 1);
        assert_eq!(m.batches_freed(), 1);
        m.finish().expect("clean finish");
    }

    #[test]
    fn single_thread_multi_slot_reclaims() {
        let m = HyalineModel::new(
            ModelConfig {
                slots: 4,
                variant: Variant::Hyaline,
                fault: Fault::None,
            },
            vec![vec![
                Op::Enter(2),
                Op::Retire,
                Op::Retire,
                Op::Leave,
                Op::Enter(1),
                Op::Retire,
                Op::Leave,
            ]],
        );
        let m = run_sequential(m);
        assert_eq!(m.batches_created(), 3);
        assert_eq!(m.batches_freed(), 3);
        m.finish().expect("clean finish");
    }

    #[test]
    fn hyaline1_single_thread_reclaims() {
        let m = HyalineModel::new(
            ModelConfig {
                slots: 2,
                variant: Variant::Hyaline1,
                fault: Fault::None,
            },
            vec![
                vec![Op::Enter(0), Op::Retire, Op::Leave],
                vec![Op::Enter(1), Op::Retire, Op::Leave],
            ],
        );
        let m = run_sequential(m);
        assert_eq!(m.batches_freed(), 2);
        m.finish().expect("clean finish");
    }

    #[test]
    fn trim_makes_prior_retires_reclaimable() {
        let m = HyalineModel::new(
            ModelConfig {
                slots: 1,
                variant: Variant::Hyaline,
                fault: Fault::None,
            },
            vec![vec![Op::Enter(0), Op::Retire, Op::Trim, Op::Retire, Op::Leave]],
        );
        let m = run_sequential(m);
        assert_eq!(m.batches_freed(), 2);
        m.finish().expect("clean finish");
    }

    #[test]
    fn finish_detects_leaks() {
        // A thread that exits while a batch is still unreclaimed (program
        // retires without leaving is rejected earlier, so emulate a fault).
        let m = HyalineModel::new(
            ModelConfig {
                slots: 2,
                variant: Variant::Hyaline,
                fault: Fault::SkipEmptyAdjust,
            },
            // Slot 1 is never entered: every retire sees an empty slot and,
            // with the fault, drops its Adjs — the batch can never complete.
            vec![vec![Op::Enter(0), Op::Retire, Op::Leave]],
        );
        let m = run_sequential(m);
        let err = m.finish().expect_err("leak must be detected");
        assert!(err.contains("leak"), "unexpected error: {err}");
    }

    #[test]
    fn hyaline_s_single_thread_reclaims() {
        let m = HyalineModel::new(
            ModelConfig {
                slots: 2,
                variant: Variant::HyalineS,
                fault: Fault::None,
            },
            vec![vec![
                Op::Enter(0),
                Op::Deref,
                Op::Retire,
                Op::Retire,
                Op::Leave,
            ]],
        );
        let m = run_sequential(m);
        assert_eq!(m.batches_created(), 2);
        assert_eq!(m.batches_freed(), 2);
        m.finish().expect("clean finish");
    }

    #[test]
    fn deref_outside_operation_rejected() {
        let mut m = HyalineModel::new(
            ModelConfig {
                slots: 2,
                variant: Variant::HyalineS,
                fault: Fault::None,
            },
            vec![vec![Op::Deref]],
        );
        let err = m.step(0).expect_err("deref outside enter/leave");
        assert!(err.contains("outside an operation"), "got: {err}");
    }

    #[test]
    fn stall_pins_only_inserted_batches() {
        // Deterministic schedule of the miniature Figure 10a under plain
        // Hyaline: the stalled slot pins what was inserted into it; the
        // relaxed finish() accepts exactly that and nothing more.
        let mut m = HyalineModel::new(
            ModelConfig {
                slots: 2,
                variant: Variant::Hyaline,
                fault: Fault::None,
            },
            vec![
                vec![Op::Enter(0), Op::Stall],
                vec![Op::Enter(1), Op::Retire, Op::Leave],
            ],
        );
        // Thread 0 enters and stalls, then thread 1 churns.
        while m.nth_enabled(0) == Some(0) {
            m.step(0).unwrap();
        }
        while let Some(tid) = m.nth_enabled(0) {
            m.step(tid).unwrap();
        }
        m.finish().expect("bounded pinning is legitimate");
        assert_eq!(m.batches_created(), 1);
        assert_eq!(m.batches_freed(), 0, "batch pinned by the stalled slot");
    }

    #[test]
    fn stalled_slot_with_stale_era_is_skipped() {
        // Same shape under Hyaline-S: every batch is born after the stalled
        // thread's access era, so it skips slot 0 and reclaims fully.
        let mut m = HyalineModel::new(
            ModelConfig {
                slots: 2,
                variant: Variant::HyalineS,
                fault: Fault::None,
            },
            vec![
                vec![Op::Enter(0), Op::Stall],
                vec![Op::Enter(1), Op::Deref, Op::Retire, Op::Leave],
            ],
        );
        while m.nth_enabled(0) == Some(0) {
            m.step(0).unwrap();
        }
        while let Some(tid) = m.nth_enabled(0) {
            m.step(tid).unwrap();
        }
        m.finish().expect("robust finish");
        assert_eq!(m.batches_freed(), 1, "era skip must unpin the batch");
    }

    #[test]
    fn paper_figure2a_walkthrough() {
        // The exact scenario of Figure 2a: three threads on a single list.
        let cfg = ModelConfig {
            slots: 1,
            variant: Variant::Hyaline,
            fault: Fault::None,
        };
        let mut m = HyalineModel::new(
            cfg,
            vec![
                vec![Op::Enter(0), Op::Retire, Op::Leave], // T1: retires N1
                vec![Op::Enter(0), Op::Retire, Op::Leave], // T2: retires N2
                vec![Op::Enter(0), Op::Leave],             // T3: reader
            ],
        );
        // (a) T1 enters; (b) T1 retires N1 fully.
        m.step(0).unwrap(); // enter
        while m.threads[0].micro != Micro::Ready {
            m.step(0).unwrap();
        }
        m.step(0).unwrap(); // begin retire (allocates batch 0 = N1, first load)
        while m.threads[0].micro != Micro::Ready {
            m.step(0).unwrap();
        }
        // (c) T2 enters; (d) T2 begins retiring N2 but stalls before the
        // predecessor adjustment: insert CAS done, adjust pending.
        m.step(1).unwrap(); // enter
        m.step(1).unwrap(); // begin retire: load
        m.step(1).unwrap(); // CAS publishes N2, pred = N1 pending
        assert!(matches!(
            m.threads[1].micro,
            Micro::RetireAdjustPred { pred: 0, .. }
        ));
        // (e) T3 enters. (f) T1 leaves and dereferences through its handle.
        m.step(2).unwrap();
        while m.enabled().contains(&0) {
            m.step(0).unwrap();
        }
        // N1 must still be alive: its adjustment is pending (NRef negative).
        assert_eq!(m.batches_freed(), 0, "premature free of N1");
        // (g) T2 completes the adjustment; (h) T2 leaves -> frees N1.
        while m.enabled().contains(&1) {
            m.step(1).unwrap();
        }
        assert!(m.batches[0].freed, "N1 freed by T2's leave");
        assert!(!m.batches[1].freed, "N2 still held by T3");
        // (i) T3 leaves -> frees N2.
        while m.enabled().contains(&2) {
            m.step(2).unwrap();
        }
        assert!(m.batches[1].freed);
        m.finish().expect("clean finish");
    }
}
