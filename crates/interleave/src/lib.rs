//! Deterministic interleaving exploration for the Hyaline algorithms.
//!
//! Stress tests catch concurrency bugs probabilistically; this crate catches
//! them *exhaustively* for small scenarios. An executable **model** of the
//! paper's algorithms (Figures 3 and 4) is expressed as per-thread state
//! machines in which every transition is exactly one atomic action — one
//! load, one CAS, one FAA. The [`Explorer`] then replays the scenario under
//! every possible schedule (or a seeded random sample when the tree is too
//! large), with safety checks wired into the model itself:
//!
//! * every read of a batch's fields asserts the batch has not been freed
//!   (the model-level equivalent of a use-after-free),
//! * every reference-count zero-crossing asserts the batch is freed exactly
//!   once (double-free), and
//! * at quiescence, every retired batch must have been freed and every
//!   reference count must have returned to zero (leaks, lost adjustments).
//!
//! The model covers the single-list algorithm of §3.1, the multi-slot
//! batched algorithm of §3.2 (including the `Adjs` wrap-around accounting
//! and empty-slot adjustments), the `trim` operation of §3.3, the
//! Hyaline-1 `Inserts` counting of Figure 4, and the robust Hyaline-S of
//! Figure 5 — birth eras, access-era publication, era-based slot skipping
//! — together with *stalled-thread* scenarios whose end-state invariants
//! are the paper's robustness claims (Theorem 4): an unreclaimed batch
//! must be pinned by a stalled slot whose access era covered its birth.
//!
//! Beyond the modelled algorithms, the [`llsc`] module explores the §4.4
//! LL/SC port of the head operations (Figure 7) by stepping the *real*
//! [`hyaline::llsc::Granule`] primitives one atomic action at a time —
//! including a fault-injected single-width-claim variant proving that the
//! reservation granule must span both head words. The [`reclaimer`] module
//! likewise explores the `smr-async` deferred-flush hand-off protocol —
//! dirty check-ins, ticket pushes, background drains, and the shutdown
//! handshake — with fault-injected variants (acknowledging shutdown before
//! draining, dropping a refused ticket, double-freeing a batch) that the
//! end-state and join-point invariants must catch. The [`crystalline`]
//! module explores the Crystalline protocols the same way: the wait-free
//! batch handoff (occupancy-tagged cell entries, displacement, adoption)
//! and the Crystalline-W era-certification helping, again with
//! fault-injected variants (unconditional release, a forgotten handoff
//! reference, certifying before touching) that must each be caught. The
//! [`recycle`] module explores the node-recycling free list of
//! `smr_core::recycle` — magazine spills (`push_block`) racing refills
//! (`take_all`) — whose safety rests on an ABA-freedom-by-construction
//! argument, and demonstrates via a fault-injected Treiber *pop-one*
//! mutant why that operation is deliberately absent from the pool.
//!
//! The exploration assumes **sequential consistency**: it interleaves atomic
//! actions but does not model weaker memory orderings. The production crates
//! use acquire/release (and seq-cst where required); this checker validates
//! the *algorithmic* accounting, while the stress and sanitizer suites cover
//! ordering in the real implementation.
//!
//! # Example
//!
//! ```
//! use interleave::{Explorer, scenarios};
//!
//! // Every interleaving of two threads retiring through one slot
//! // (203,452 schedules).
//! let outcome = Explorer::exhaustive(300_000)
//!     .run(&scenarios::retire_churn(2, 1, 1));
//! assert!(outcome.violation.is_none());
//! assert!(outcome.complete, "schedule tree fully explored");
//! ```

#![warn(missing_docs)]

pub mod crystalline;
pub mod explorer;
pub mod llsc;
pub mod model;
pub mod pool;
pub mod reclaimer;
pub mod recycle;
pub mod scenarios;

pub use crystalline::{CrystalFault, CrystalOutcome, CrystalScenario, CrystalViolation};
pub use explorer::{Explorer, Outcome, Violation};
pub use llsc::{LlscFault, LlscOutcome, LlscScenario, LlscViolation};
pub use model::{HyalineModel, ModelConfig, ThreadProgram, Variant};
pub use pool::{PoolOp, PoolOutcome, PoolScenario, PoolViolation};
pub use reclaimer::{ReclaimerFault, ReclaimerOutcome, ReclaimerScenario, ReclaimerViolation};
pub use recycle::{RecycleOp, RecycleOutcome, RecycleScenario, RecycleViolation};
