//! Ready-made scenarios for the explorer: the small concurrent shapes whose
//! interleavings cover the algorithm's interesting races.

use crate::model::{Fault, HyalineModel, ModelConfig, Op, ThreadProgram, Variant};

/// A buildable scenario: deterministic model construction for replay.
///
/// # Example
///
/// ```
/// use interleave::scenarios;
///
/// let s = scenarios::retire_churn(2, 1, 1);
/// let model = s.build();
/// assert_eq!(model.enabled().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    config: ModelConfig,
    programs: Vec<ThreadProgram>,
    /// Human-readable description (used by the model-check example).
    pub name: String,
}

impl Scenario {
    /// Builds a fresh model instance.
    pub fn build(&self) -> HyalineModel {
        HyalineModel::new(self.config.clone(), self.programs.clone())
    }

    /// Number of threads.
    pub fn threads(&self) -> usize {
        self.programs.len()
    }
}

/// `threads` threads each performing `retires` enter→retire→leave cycles,
/// spread round-robin over `slots` slots.
///
/// This is the bread-and-butter scenario: it exercises head CAS contention,
/// predecessor credits, empty-slot adjustments (whenever a slot happens to
/// have no active thread at retire time), and the detach path of the last
/// leaver.
pub fn retire_churn(threads: usize, retires: usize, slots: usize) -> Scenario {
    let programs = (0..threads)
        .map(|t| {
            let mut p = Vec::new();
            for _ in 0..retires {
                p.push(Op::Enter(t % slots));
                p.push(Op::Retire);
                p.push(Op::Leave);
            }
            p
        })
        .collect();
    Scenario {
        config: ModelConfig {
            slots,
            variant: Variant::Hyaline,
            fault: Fault::None,
        },
        programs,
        name: format!("retire_churn(threads={threads}, retires={retires}, k={slots})"),
    }
}

/// A pure reader overlapping two retiring writers (the Figure 2a shape):
/// the reader's reservation must pin every batch retired while it is
/// inside, and everything must still reclaim once it leaves.
pub fn reader_overlap(slots: usize) -> Scenario {
    Scenario {
        config: ModelConfig {
            slots,
            variant: Variant::Hyaline,
            fault: Fault::None,
        },
        programs: vec![
            vec![Op::Enter(0), Op::Leave],
            vec![Op::Enter(0), Op::Retire, Op::Leave],
            vec![Op::Enter((1) % slots), Op::Retire, Op::Leave],
        ],
        name: format!("reader_overlap(k={slots})"),
    }
}

/// The two-thread core of [`reader_overlap`]: one pure reader against one
/// retiring writer. Small enough to explore exhaustively.
pub fn reader_vs_retirer(slots: usize) -> Scenario {
    Scenario {
        config: ModelConfig {
            slots,
            variant: Variant::Hyaline,
            fault: Fault::None,
        },
        programs: vec![
            vec![Op::Enter(0), Op::Leave],
            vec![Op::Enter((1) % slots), Op::Retire, Op::Retire, Op::Leave],
        ],
        name: format!("reader_vs_retirer(k={slots})"),
    }
}

/// §3.3 trimming interleaved with a concurrent retirer: `trim` dereferences
/// the sublist without altering the head, so batches retired before the
/// trim reclaim while the trimming thread stays inside its operation.
pub fn trim_pipeline(slots: usize) -> Scenario {
    Scenario {
        config: ModelConfig {
            slots,
            variant: Variant::Hyaline,
            fault: Fault::None,
        },
        programs: vec![
            vec![Op::Enter(0), Op::Retire, Op::Trim, Op::Retire, Op::Leave],
            vec![Op::Enter(0), Op::Retire, Op::Leave],
        ],
        name: format!("trim_pipeline(k={slots})"),
    }
}

/// Hyaline-1 (Figure 4): one dedicated slot per thread, `Inserts` counting.
pub fn hyaline1_churn(threads: usize, retires: usize) -> Scenario {
    let programs = (0..threads)
        .map(|t| {
            let mut p = Vec::new();
            for _ in 0..retires {
                p.push(Op::Enter(t));
                p.push(Op::Retire);
                p.push(Op::Leave);
            }
            p
        })
        .collect();
    Scenario {
        config: ModelConfig {
            slots: threads,
            variant: Variant::Hyaline1,
            fault: Fault::None,
        },
        programs,
        name: format!("hyaline1_churn(threads={threads}, retires={retires})"),
    }
}

/// Hyaline-S churn: like [`retire_churn`] but with a `Deref` inside every
/// window, exercising birth-era stamping, access-era publication and the
/// era-skip path of `retire`.
pub fn hyaline_s_churn(threads: usize, retires: usize, slots: usize) -> Scenario {
    let programs = (0..threads)
        .map(|t| {
            let mut p = Vec::new();
            for _ in 0..retires {
                p.push(Op::Enter(t % slots));
                p.push(Op::Deref);
                p.push(Op::Retire);
                p.push(Op::Leave);
            }
            p
        })
        .collect();
    Scenario {
        config: ModelConfig {
            slots,
            variant: Variant::HyalineS,
            fault: Fault::None,
        },
        programs,
        name: format!("hyaline_s_churn(threads={threads}, retires={retires}, k={slots})"),
    }
}

/// The Figure 10a adversary in miniature: one thread parks *inside* an
/// operation (slot 0, stale era) while another churns retirements through
/// slot 1. Every batch is born after the parked thread's access era, so the
/// era check must keep slot 0 out of every retirement list and everything
/// must reclaim — the robustness property of Theorem 4, checked across
/// interleavings by [`HyalineModel::finish`].
pub fn stalled_reader_robustness(retires: usize) -> Scenario {
    let mut churner = Vec::new();
    for _ in 0..retires {
        churner.push(Op::Enter(1));
        churner.push(Op::Deref);
        churner.push(Op::Retire);
        churner.push(Op::Leave);
    }
    Scenario {
        config: ModelConfig {
            slots: 2,
            variant: Variant::HyalineS,
            fault: Fault::None,
        },
        programs: vec![vec![Op::Enter(0), Op::Stall], churner],
        name: format!("stalled_reader_robustness(retires={retires})"),
    }
}

/// A stalled thread under plain (non-robust) Hyaline: retirements that land
/// in its slot stay pinned — `finish` verifies the pinning is *bounded* to
/// batches actually inserted into the stalled slot (nothing else leaks).
pub fn stalled_reader_nonrobust(retires: usize) -> Scenario {
    let mut churner = Vec::new();
    for _ in 0..retires {
        churner.push(Op::Enter(1));
        churner.push(Op::Retire);
        churner.push(Op::Leave);
    }
    Scenario {
        config: ModelConfig {
            slots: 2,
            variant: Variant::Hyaline,
            fault: Fault::None,
        },
        programs: vec![vec![Op::Enter(0), Op::Stall], churner],
        name: format!("stalled_reader_nonrobust(retires={retires})"),
    }
}

/// An arbitrary scenario from explicit programs.
///
/// # Panics
///
/// Panics on invalid configuration (see [`HyalineModel::new`]).
pub fn custom(
    slots: usize,
    variant: Variant,
    fault: Fault,
    programs: Vec<ThreadProgram>,
) -> Scenario {
    // Validate eagerly so misconfigured scenarios fail at construction.
    let scenario = Scenario {
        config: ModelConfig {
            slots,
            variant,
            fault,
        },
        programs,
        name: format!("custom(k={slots}, {variant:?}, {fault:?})"),
    };
    let _ = scenario.build();
    scenario
}

/// The same scenario with a deliberate algorithm bug injected (mutation
/// testing: the explorer must find a violation).
pub fn with_fault(mut scenario: Scenario, fault: Fault) -> Scenario {
    scenario.config.fault = fault;
    scenario.name = format!("{} + {fault:?}", scenario.name);
    scenario
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Explorer;

    #[test]
    fn all_builders_build() {
        for s in [
            retire_churn(2, 1, 1),
            retire_churn(3, 1, 2),
            reader_overlap(1),
            reader_overlap(2),
            trim_pipeline(1),
            hyaline1_churn(2, 1),
        ] {
            let m = s.build();
            assert!(!m.enabled().is_empty(), "{}: no threads", s.name);
        }
    }

    #[test]
    fn exhaustive_retire_churn_single_slot() {
        let outcome = Explorer::exhaustive(5_000_000).run(&retire_churn(2, 1, 1));
        assert!(outcome.complete, "tree too large: {}", outcome.executions);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    }

    #[test]
    #[cfg_attr(
        not(feature = "slow-tests"),
        ignore = "~30s exhaustive DFS; run with --features slow-tests (or --ignored)"
    )]
    fn exhaustive_retire_churn_two_slots() {
        let outcome = Explorer::exhaustive(5_000_000).run(&retire_churn(2, 1, 2));
        assert!(outcome.complete, "tree too large: {}", outcome.executions);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    }

    #[test]
    fn exhaustive_reader_vs_retirer() {
        for slots in [1, 2] {
            let outcome = Explorer::exhaustive(8_000_000).run(&reader_vs_retirer(slots));
            assert!(outcome.complete, "k={slots}: {} execs", outcome.executions);
            assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        }
    }

    #[test]
    fn budgeted_reader_overlap() {
        // Three threads: the full tree exceeds 50M schedules, so explore a
        // bounded DFS prefix plus a random sample.
        for slots in [1, 2] {
            let dfs = Explorer::exhaustive(300_000).run(&reader_overlap(slots));
            assert!(dfs.violation.is_none(), "{:?}", dfs.violation);
            let rnd = Explorer::random(2_000, 0x0BEE).run(&reader_overlap(slots));
            assert!(rnd.violation.is_none(), "{:?}", rnd.violation);
        }
    }

    #[test]
    fn budgeted_trim_pipeline() {
        let dfs = Explorer::exhaustive(300_000).run(&trim_pipeline(1));
        assert!(dfs.violation.is_none(), "{:?}", dfs.violation);
        let rnd = Explorer::random(2_000, 0x7212).run(&trim_pipeline(1));
        assert!(rnd.violation.is_none(), "{:?}", rnd.violation);
    }

    #[test]
    fn exhaustive_hyaline1() {
        let outcome = Explorer::exhaustive(5_000_000).run(&hyaline1_churn(2, 1));
        assert!(outcome.complete, "{} execs", outcome.executions);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    }

    #[test]
    fn random_three_threads() {
        let outcome = Explorer::random(2_000, 0xC0FFEE).run(&retire_churn(3, 2, 2));
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    }

    #[test]
    fn random_hyaline1_three_threads() {
        let outcome = Explorer::random(2_000, 0xBEEF).run(&hyaline1_churn(3, 2));
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    }

    #[test]
    fn mutation_skip_empty_adjust_found() {
        let s = with_fault(retire_churn(2, 1, 2), Fault::SkipEmptyAdjust);
        let outcome = Explorer::exhaustive(5_000_000).run(&s);
        let v = outcome.violation.expect("leak must be found");
        assert!(v.message.contains("leak"), "got: {}", v.message);
    }

    #[test]
    fn mutation_no_adjs_in_credit_found() {
        let s = with_fault(retire_churn(2, 1, 2), Fault::NoAdjsInPredecessorCredit);
        let outcome = Explorer::exhaustive(5_000_000).run(&s);
        assert!(
            outcome.violation.is_some(),
            "broken wrap-around accounting must be detected"
        );
    }

    #[test]
    fn mutation_no_detach_found() {
        let s = with_fault(retire_churn(2, 1, 1), Fault::NoDetachOnLastLeave);
        let outcome = Explorer::exhaustive(5_000_000).run(&s);
        assert!(
            outcome.violation.is_some(),
            "lost detach adjustment must be detected"
        );
    }

    #[test]
    #[cfg_attr(
        not(feature = "slow-tests"),
        ignore = "~10s exhaustive DFS; run with --features slow-tests (or --ignored)"
    )]
    fn exhaustive_hyaline_s_churn() {
        let outcome = Explorer::exhaustive(8_000_000).run(&hyaline_s_churn(2, 1, 2));
        assert!(outcome.complete, "{} execs", outcome.executions);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    }

    #[test]
    fn exhaustive_stalled_reader_robustness() {
        // Every interleaving: the parked thread's stale slot must never
        // receive (nor pin) batches born after its access era.
        for retires in [1, 2] {
            let outcome =
                Explorer::exhaustive(8_000_000).run(&stalled_reader_robustness(retires));
            assert!(outcome.complete, "{} execs", outcome.executions);
            assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        }
    }

    #[test]
    fn exhaustive_stalled_reader_nonrobust_bounded() {
        // Plain Hyaline pins batches in the stalled slot but nothing else.
        let outcome = Explorer::exhaustive(8_000_000).run(&stalled_reader_nonrobust(2));
        assert!(outcome.complete, "{} execs", outcome.executions);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    }

    #[test]
    fn robustness_differs_between_variants() {
        // Quantify the difference: under the robust variant every batch is
        // reclaimed despite the stall; under plain Hyaline at least one
        // batch stays pinned in some interleaving.
        let robust = stalled_reader_robustness(2);
        let mut any_pinned_robust = false;
        let mut m = robust.build();
        while let Some(tid) = m.nth_enabled(0) {
            m.step(tid).unwrap();
        }
        m.finish().unwrap();
        any_pinned_robust |= m.batches_freed() != m.batches_created();
        assert!(
            !any_pinned_robust,
            "Hyaline-S pinned batches despite stale-era stall"
        );

        let nonrobust = stalled_reader_nonrobust(2);
        let mut m = nonrobust.build();
        while let Some(tid) = m.nth_enabled(0) {
            m.step(tid).unwrap();
        }
        m.finish().unwrap();
        assert!(
            m.batches_freed() < m.batches_created(),
            "plain Hyaline should pin batches inserted into the stalled slot"
        );
    }

    #[test]
    fn mutation_ignore_birth_eras_found() {
        // Dropping the era check re-introduces non-robustness: some batch
        // born after the stalled slot's era gets inserted there and pinned,
        // which `finish` reports as a robustness violation.
        let s = with_fault(stalled_reader_robustness(2), Fault::IgnoreBirthEras);
        let outcome = Explorer::exhaustive(8_000_000).run(&s);
        let v = outcome.violation.expect("era-check removal must be detected");
        assert!(
            v.message.contains("robustness violation"),
            "got: {}",
            v.message
        );
    }
}
