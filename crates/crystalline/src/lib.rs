//! Crystalline: wait-free memory reclamation atop the Hyaline batch core.
//!
//! This crate implements the repo's third scheme family (after the Hyaline
//! variants and the classic baselines), following *"Crystalline: Fast and
//! Memory Efficient Wait-Free Reclamation"* (Nikolaev & Ravindran — the same
//! author lineage as Hyaline). It reuses the Hyaline batch/reference-counting
//! skeleton (`hyaline::batch`: one `NRef` counter per batch of retired nodes,
//! three header words per node) and the robust per-thread-slot layout of
//! Hyaline-1S (birth eras + per-slot access eras), then removes the two
//! places where Hyaline's progress is merely lock-free:
//!
//! * **Wait-free `retire` — [`CrystallineL`].** Hyaline inserts a batch into
//!   each active slot's retirement list with a CAS loop, which concurrent
//!   inserters can starve. Crystalline bounds the attempts
//!   ([`SmrConfig::handoff_attempts`]) and then *hands the batch off*: one
//!   unconditional `swap` deposits the batch's REFS pointer into the slot's
//!   dedicated *handoff cell*, tagged with the slot's 16-bit occupancy
//!   sequence. The cell entry carries one `NRef` reference, exactly like a
//!   list insertion; the slot's owner collects it at `leave`. A later
//!   retirer that displaces the entry releases its reference only when the
//!   tag proves the deposit-time occupancy has ended — otherwise it *adopts*
//!   the entry and retries after the occupancy sequence advances (spilling
//!   to a domain-wide orphan list if the handle drops first). Wrap-around of
//!   the 16-bit tag errs only in the conservative direction: equal tags keep
//!   the reference alive, never release it early.
//!
//! * **Helped `protect` — [`CrystallineW`].** An era-based protect loop
//!   terminates only when the global era stays put across one pointer load;
//!   threads that keep advancing the era can starve it. Crystalline-W gives
//!   every slot a *state/result* word pair: after a bounded fast path the
//!   owner publishes a request (`req`), and any thread about to advance the
//!   era first *helps* — it raises the slot's access era with a CAS-max
//!   `touch` and then certifies the raised era into `result`. The owner
//!   consumes the certificate by reloading the pointer and checking the era
//!   did not pass the certified value, so the protection invariant (access
//!   era published before the load it covers) is exactly the one Hyaline-1S
//!   establishes for itself. Helpers touch only the domain's own slot words
//!   — never memory owned by the data structure — so helping cannot
//!   use-after-free by construction. A per-slot monotone request sequence
//!   defeats stale certificates from helpers of an earlier request.
//!
//! Both variants implement [`smr_core::Smr`], so every `lockfree-ds`
//! structure, `Sharded` adapter, `HandlePool`, and the async `TaskGuard`
//! path work unchanged. Like Hyaline-1S they are *robust*: a stalled
//! reader's access era goes stale and retirement skips its slot, so the
//! peak retired-but-unreclaimed count stays bounded under stalls (the
//! `stalled-reader` sweep in `bench-harness` records this directly).
//!
//! The handoff and helping protocols are exhaustively model-checked in
//! `interleave::crystalline`, including fault-injected variants (releasing
//! a displaced entry without the tag check, forgetting the handoff's `NRef`
//! reference, certifying before touching) that the checker must catch.
//!
//! # Quick start
//!
//! ```
//! use crystalline::CrystallineL;
//! use smr_core::{Smr, SmrHandle};
//!
//! let domain: CrystallineL<u32> = CrystallineL::new();
//! let mut h = domain.handle();
//! h.enter();
//! let node = h.alloc(7);
//! unsafe { h.retire(node) };
//! h.leave();
//! ```

#![warn(missing_docs)]

use crossbeam_utils::CachePadded;
use hyaline::batch::{
    adjust_refs, chain_next, decrement, free_batch, free_batch_into, header, FinalizedBatch,
    LocalBatch, W_NEXT,
};
use hyaline::head::{AtomicHead1, Head1Word, HeadWord};
use smr_core::{
    Atomic, EraClock, LocalStats, Magazine, NodePool, Shared, SlotRegistry, Smr, SmrConfig,
    SmrHandle, SmrNode, SmrStats,
};
use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Bit 63 of a slot's `result` word: set while the request is unanswered
/// (the low bits then carry the request sequence). Clear once a helper has
/// certified an era (the word then *is* the certified era, which never
/// reaches 2^63 in practice).
const EMPTY_BIT: u64 = 1 << 63;

/// Low bits of a `result`/`req` word: the request sequence.
const SEQ_MASK: u64 = EMPTY_BIT - 1;

/// Low 16 bits of the occupancy sequence used as the handoff-cell tag
/// (packed beside the 48-bit REFS pointer, like the Hyaline head word).
const TAG_MASK: u64 = 0xffff;

/// Fast-path rounds of the Crystalline-W protect loop before the owner
/// publishes a help request.
const PROTECT_FAST_ROUNDS: usize = 8;

/// Raises `access` to at least `era` (the paper's CAS-max `touch`).
///
/// Unlike Hyaline-1S's plain owner store this never moves the era
/// *backward*, which matters in Crystalline-W where helpers also raise it:
/// a plain owner store could undo a helper's raise and let a retirer skip
/// the slot while the owner holds a helper-certified pointer.
fn touch_max(access: &AtomicU64, era: u64) {
    let mut cur = access.load(Ordering::SeqCst);
    while cur < era {
        match access.compare_exchange_weak(cur, era, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => break,
            Err(now) => cur = now,
        }
    }
}

/// One Crystalline slot: the Hyaline-1S head/access pair plus the wait-free
/// machinery — the occupancy sequence, the handoff cell, and the
/// Crystalline-W state/result words.
#[derive(Debug)]
struct CrystalSlot {
    /// Retirement-list head + active bit (identical to Hyaline-1S).
    head: AtomicHead1,
    /// The owner's access era; in Crystalline-W helpers raise it too.
    access: AtomicU64,
    /// Occupancy sequence, bumped by the owner at `leave`. Its low 16 bits
    /// tag handoff-cell entries so displacers can tell whether the
    /// deposit-time occupancy has ended.
    seq: AtomicU64,
    /// The handoff cell: a [`HeadWord`]-packed (16-bit tag | 48-bit REFS
    /// pointer) entry, or 0 when empty. Each non-empty entry holds one
    /// `NRef` reference on its batch.
    handoff: AtomicUsize,
    /// Crystalline-W: pending request sequence (0 = no request).
    req: AtomicU64,
    /// Crystalline-W: `EMPTY_BIT | seq` while pending, the certified era
    /// once helped.
    result: AtomicU64,
    /// Crystalline-W: monotone request counter. Lives in the slot (not the
    /// handle) so sequences never repeat across handle reuse of the slot.
    help_seq: AtomicU64,
}

impl CrystalSlot {
    fn new() -> Self {
        Self {
            head: AtomicHead1::new(),
            access: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            handoff: AtomicUsize::new(0),
            req: AtomicU64::new(0),
            result: AtomicU64::new(0),
            help_seq: AtomicU64::new(0),
        }
    }
}

/// An adopted handoff entry: `(slot index, deposit-time tag, REFS node)`.
/// The reference is released once the slot's occupancy sequence moves past
/// the tag; until then the batch is conservatively kept alive.
type Adopted<T> = (usize, usize, *mut SmrNode<T>);

/// A Crystalline reclamation domain. `HELPING = false` is
/// [`CrystallineL`] (wait-free retire); `HELPING = true` is
/// [`CrystallineW`] (additionally helps stalled protect loops).
pub struct Crystalline<T: Send + 'static, const HELPING: bool> {
    slots: Box<[CachePadded<CrystalSlot>]>,
    registry: SlotRegistry,
    era: EraClock,
    era_freq: u64,
    batch_min: usize,
    handoff_attempts: usize,
    /// Adopted entries whose handle dropped before the guarded occupancy
    /// ended. Swept opportunistically by draining handles and finally at
    /// domain drop. REFS pointers are stored as `usize` so the domain stays
    /// auto-`Send`/`Sync`.
    orphans: Mutex<Vec<(usize, usize, usize)>>,
    stats: SmrStats,
    pool: NodePool,
    _marker: PhantomData<fn(T) -> T>,
}

/// Crystalline-L: wait-free retire via the per-slot handoff cell.
pub type CrystallineL<T> = Crystalline<T, false>;

/// Crystalline-W: Crystalline-L plus wait-free helping of protect loops
/// through the per-slot state/result words.
pub type CrystallineW<T> = Crystalline<T, true>;

impl<T: Send + 'static, const HELPING: bool> std::fmt::Debug for Crystalline<T, HELPING> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct(if HELPING {
            "CrystallineW"
        } else {
            "CrystallineL"
        })
        .field("capacity", &self.slots.len())
        .field("registered", &self.registry.claimed())
        .field("era", &self.era.current())
        .finish_non_exhaustive()
    }
}

impl<T: Send + 'static, const HELPING: bool> Crystalline<T, HELPING> {
    /// Completes pending protect requests before the caller advances the
    /// era: raise the slot's access to the current era, then certify it.
    /// Era advancers are exactly the threads that can starve a protect
    /// loop, so they help first (Crystalline-W's helping rule).
    fn help_pending(&self) {
        for idx in self.registry.iter_claimed() {
            let slot = &self.slots[idx];
            let rseq = slot.req.load(Ordering::Acquire);
            if rseq == 0 {
                continue;
            }
            let r = slot.result.load(Ordering::Acquire);
            if r & EMPTY_BIT == 0 || (r & SEQ_MASK) != rseq {
                // Already certified, or the owner is between re-arming the
                // result word and publishing the new request.
                continue;
            }
            let e = self.era.current();
            debug_assert_eq!(e & EMPTY_BIT, 0, "era overflowed into the EMPTY bit");
            touch_max(&slot.access, e);
            fence(Ordering::SeqCst);
            // Certify only the exact request we observed: a stale helper of
            // an earlier request cannot match the current `EMPTY | seq`.
            let _ = slot
                .result
                .compare_exchange(r, e, Ordering::AcqRel, Ordering::Relaxed);
        }
    }
}

impl<T: Send + 'static, const HELPING: bool> Smr<T> for Crystalline<T, HELPING> {
    type Handle<'d> = CrystallineHandle<'d, T, HELPING>;

    fn with_config(config: SmrConfig) -> Self {
        let capacity = config.max_threads;
        Self {
            slots: (0..capacity)
                .map(|_| CachePadded::new(CrystalSlot::new()))
                .collect(),
            registry: SlotRegistry::new(capacity),
            era: EraClock::new(),
            era_freq: config.era_freq,
            batch_min: config.batch_min,
            handoff_attempts: config.handoff_attempts,
            orphans: Mutex::new(Vec::new()),
            stats: SmrStats::new(),
            pool: NodePool::for_node::<T>(&config),
            _marker: PhantomData,
        }
    }

    fn handle(&self) -> CrystallineHandle<'_, T, HELPING> {
        CrystallineHandle {
            slot: self.registry.claim(),
            domain: self,
            handle: ptr::null_mut(),
            active: false,
            batch: LocalBatch::new(),
            reap: Vec::new(),
            adopted: Vec::new(),
            local_stats: LocalStats::new(),
            alloc_counter: 0,
            access_cache: 0,
            mag: self.pool.magazine(),
        }
    }

    fn stats(&self) -> &SmrStats {
        &self.stats
    }

    fn name() -> &'static str {
        if HELPING {
            "Crystalline-W"
        } else {
            "Crystalline-L"
        }
    }

    fn robust() -> bool {
        true
    }

    fn supports_trim() -> bool {
        true
    }

    fn needs_seek_validation() -> bool {
        // Era scheme: same reasoning as Hyaline-S/1S — era-skipped batches
        // are not covered by a later deref, so traversals must re-validate.
        true
    }

    fn wait_free_retire() -> bool {
        true
    }
}

impl<T: Send + 'static, const HELPING: bool> Drop for Crystalline<T, HELPING> {
    fn drop(&mut self) {
        // Every handle borrows the domain, so all of them have been dropped:
        // every occupancy has ended, every list has been traversed, and the
        // only outstanding NRef references live in handoff cells and the
        // orphan list. Release them all; every batch then crosses zero.
        let mut reap: Vec<*mut SmrNode<T>> = Vec::new();
        for slot in self.slots.iter() {
            debug_assert_eq!(
                slot.head.load(Ordering::Acquire),
                Head1Word::EMPTY,
                "Crystalline domain dropped with a non-empty slot"
            );
            let cell = HeadWord(slot.handoff.swap(0, Ordering::Acquire));
            let refs = cell.ptr::<SmrNode<T>>();
            if !refs.is_null() {
                // SAFETY: no occupancy survives (all handles dropped), so no
                // reader the cell entry guards can still reference the
                // batch; releasing its reference is final and safe.
                unsafe { adjust_refs(refs, 1usize.wrapping_neg(), &mut reap) };
            }
        }
        let orphans = std::mem::take(
            &mut *self
                .orphans
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        );
        for (_, _, refs_bits) in orphans {
            // SAFETY: as above — quiescent teardown; the orphaned entry's
            // reference is the last obstacle to the batch crossing zero.
            unsafe { adjust_refs(refs_bits as *mut SmrNode<T>, 1usize.wrapping_neg(), &mut reap) };
        }
        let mut freed = 0u64;
        for refs in reap {
            // SAFETY: the batch's NRef crossed zero above; no thread can
            // still reference any of its nodes.
            freed += unsafe { free_batch(refs) };
        }
        if freed > 0 {
            let mut ls = LocalStats::new();
            ls.on_free(&self.stats, freed);
            ls.flush(&self.stats);
        }
    }
}

/// Per-thread handle to a [`Crystalline`] domain; owns one slot.
pub struct CrystallineHandle<'d, T: Send + 'static, const HELPING: bool> {
    domain: &'d Crystalline<T, HELPING>,
    slot: usize,
    handle: *mut SmrNode<T>,
    active: bool,
    batch: LocalBatch<T>,
    reap: Vec<*mut SmrNode<T>>,
    adopted: Vec<Adopted<T>>,
    local_stats: LocalStats,
    mag: Magazine,
    alloc_counter: u64,
    /// Lower bound on our slot's access era. Exact in Crystalline-L (the
    /// handle is the sole writer); in Crystalline-W helpers may have raised
    /// the real value further, which only strengthens protection.
    access_cache: u64,
}

// SAFETY: owned raw node pointers (local batch, reap list, adopted handoff
// entries, slot head snapshot) plus plain counters and a `Sync` domain
// borrow; the cached access era is a lower bound that remains valid from
// any thread (only this handle and — in Crystalline-W — helpers write the
// slot's access, and helpers only raise it). Nothing is thread-affine.
unsafe impl<T: Send + 'static, const HELPING: bool> Send for CrystallineHandle<'_, T, HELPING> {}

impl<T: Send + 'static, const HELPING: bool> std::fmt::Debug
    for CrystallineHandle<'_, T, HELPING>
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrystallineHandle")
            .field("slot", &self.slot)
            .field("active", &self.active)
            .field("adopted", &self.adopted.len())
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static, const HELPING: bool> CrystallineHandle<'_, T, HELPING> {
    /// The dedicated slot owned by this handle.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Adopted handoff entries still held (test/diagnostic accessor).
    pub fn adopted_len(&self) -> usize {
        self.adopted.len()
    }

    /// Decrements every batch from `next` down to (and including) the
    /// handle node (the Hyaline-1S single-list traversal).
    ///
    /// # Safety
    ///
    /// `next` must be a node this slot's reference still pins (the detached
    /// head, or a `Next` link read while inside the operation); every node
    /// on the sublist stays live until its decrement below.
    unsafe fn traverse(&mut self, mut next: *mut SmrNode<T>) {
        let handle = self.handle;
        loop {
            let curr = next;
            if curr.is_null() {
                break;
            }
            next = header(curr).word(W_NEXT).load(Ordering::Acquire) as *mut SmrNode<T>;
            decrement(curr, &mut self.reap);
            if curr == handle {
                break;
            }
        }
    }

    /// Disposes of a displaced handoff entry: releases its batch reference
    /// when the tag proves the deposit-time occupancy ended, otherwise
    /// adopts it for a later retry.
    ///
    /// The entry is this handle's sole responsibility from the moment the
    /// swap returned it — the slot owner will never see it again.
    fn release_or_adopt(&mut self, idx: usize, prev: HeadWord) {
        let refs = prev.ptr::<SmrNode<T>>();
        if refs.is_null() {
            return;
        }
        let tag = prev.refs();
        let now = (self.domain.slots[idx].seq.load(Ordering::SeqCst) & TAG_MASK) as usize;
        if now != tag {
            // The occupancy the entry was deposited under has ended (tag
            // mismatch implies at least one `leave` since the deposit), so
            // no reader it guards can still reference the batch.
            // SAFETY: the entry holds exactly one NRef reference and we are
            // its sole owner after the displacing swap; the deposit-time
            // occupant has left, so releasing cannot free a batch any
            // protected reader still uses.
            unsafe { adjust_refs(refs, 1usize.wrapping_neg(), &mut self.reap) };
        } else {
            // Same low 16 bits: the occupancy *may* still be the one the
            // entry guards (a 2^16-leave wrap also lands here, which only
            // delays the release). Hold the reference and retry later.
            self.adopted.push((idx, tag, refs));
        }
    }

    /// Releases every adopted entry whose guarded occupancy has ended.
    fn retry_adopted(&mut self) {
        if self.adopted.is_empty() {
            return;
        }
        let mut still = Vec::new();
        for (idx, tag, refs) in std::mem::take(&mut self.adopted) {
            let now = (self.domain.slots[idx].seq.load(Ordering::SeqCst) & TAG_MASK) as usize;
            if now != tag {
                // SAFETY: same argument as `release_or_adopt`'s release arm
                // — the guarded occupancy ended, the reference is ours.
                unsafe { adjust_refs(refs, 1usize.wrapping_neg(), &mut self.reap) };
            } else {
                still.push((idx, tag, refs));
            }
        }
        self.adopted = still;
    }

    /// Opportunistically releases matured orphaned entries (adopted entries
    /// whose handle dropped before the guarded occupancy ended). Skips the
    /// sweep entirely when the lock is contended — orphans are rare and the
    /// domain's `Drop` sweeps whatever remains.
    fn sweep_orphans(&mut self) {
        let Ok(mut orphans) = self.domain.orphans.try_lock() else {
            return;
        };
        if orphans.is_empty() {
            return;
        }
        let mut still = Vec::new();
        for (idx, tag, refs_bits) in orphans.drain(..) {
            let now = (self.domain.slots[idx].seq.load(Ordering::SeqCst) & TAG_MASK) as usize;
            if now != tag {
                // SAFETY: same argument as `release_or_adopt`'s release arm;
                // ownership of the entry passed to the orphan list when the
                // adopting handle dropped, and we hold the list's lock.
                unsafe {
                    adjust_refs(
                        refs_bits as *mut SmrNode<T>,
                        1usize.wrapping_neg(),
                        &mut self.reap,
                    )
                };
            } else {
                still.push((idx, tag, refs_bits));
            }
        }
        *orphans = still;
    }

    /// Inserts a finalized batch into every slot that is active *and*
    /// era-fresh enough to possibly reference it, counting insertions.
    ///
    /// Unlike Hyaline-1S this is **wait-free**: after
    /// `handoff_attempts` failed CASes on one slot the batch is deposited
    /// into the slot's handoff cell with a single unconditional swap. The
    /// cell entry carries one NRef reference (counted in `inserts` like a
    /// list insertion); a displaced previous entry is handled by
    /// [`release_or_adopt`](Self::release_or_adopt).
    ///
    /// # Safety
    ///
    /// `fin` must come from this handle's own `LocalBatch::finalize` and be
    /// unpublished: no other thread may have seen any chain node yet.
    unsafe fn insert_batch(&mut self, mut fin: FinalizedBatch<T>) {
        let domain = self.domain;
        fence(Ordering::SeqCst);
        let mut insert_node = fin.chain_head;
        // Once the chain is exhausted, remaining slots each take a fresh
        // dummy; a node already linked into one slot list must never be
        // pushed onto a second one. Handoffs consume no chain node at all —
        // the cell holds the REFS pointer directly.
        let mut spare: *mut SmrNode<T> = ptr::null_mut();
        let mut inserts: usize = 0;
        for idx in domain.registry.iter_claimed() {
            let slot = &domain.slots[idx];
            let mut attempts = 0usize;
            loop {
                let head = slot.head.load(Ordering::Acquire);
                let access = slot.access.load(Ordering::SeqCst);
                if !head.active() || access < fin.min_birth {
                    break;
                }
                if attempts >= domain.handoff_attempts {
                    // Wait-free handoff. Read the occupancy tag *after* the
                    // activity check: any occupant that could reference the
                    // batch is either the tagged occupancy (the entry is
                    // released only once the tag moves past it) or has
                    // already left (releasing is then safe regardless).
                    let tag = (slot.seq.load(Ordering::SeqCst) & TAG_MASK) as usize;
                    inserts += 1;
                    let prev = HeadWord(
                        slot.handoff
                            .swap(HeadWord::pack(tag, fin.refs_node as usize).0, Ordering::AcqRel),
                    );
                    self.release_or_adopt(idx, prev);
                    break;
                }
                let node = if insert_node != fin.refs_node {
                    insert_node
                } else {
                    if spare.is_null() {
                        spare = fin.extend_with_dummy();
                        self.local_stats.on_alloc(&domain.stats);
                        self.local_stats.on_retire(&domain.stats);
                    }
                    spare
                };
                header(node)
                    .word(W_NEXT)
                    .store(head.ptr::<SmrNode<T>>() as usize, Ordering::Relaxed);
                let new = Head1Word::pack(true, node);
                if slot
                    .head
                    .compare_exchange(head, new, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    inserts += 1;
                    if node == insert_node {
                        insert_node = chain_next(insert_node);
                    } else {
                        spare = ptr::null_mut(); // dummy consumed
                    }
                    break;
                }
                attempts += 1;
            }
        }
        adjust_refs(fin.refs_node, inserts, &mut self.reap);
    }

    fn finalize_partial(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let domain = self.domain;
        while self.batch.count() < 2 {
            // SAFETY: dummy nodes have no payload; the allocation is fresh
            // (or freshly renewed by the recycle pool).
            let dummy = unsafe { domain.pool.alloc_dummy::<T>(&mut self.mag, &domain.stats) };
            self.local_stats.on_alloc(&domain.stats);
            self.local_stats.on_retire(&self.domain.stats);
            // SAFETY: `dummy` is exclusively owned until pushed.
            unsafe { self.batch.push(dummy.as_ptr(), u64::MAX, false) };
        }
        // SAFETY: all batch nodes are owned by this handle and unpublished.
        let fin = unsafe { self.batch.finalize(0) };
        // SAFETY: `fin` is this handle's own freshly finalized batch.
        unsafe { self.insert_batch(fin) };
    }

    fn drain(&mut self) {
        self.retry_adopted();
        self.sweep_orphans();
        if self.reap.is_empty() {
            return;
        }
        let mut freed = 0;
        let domain = self.domain;
        let mag = &mut self.mag;
        for refs in std::mem::take(&mut self.reap) {
            // SAFETY: a REFS node enters `reap` only when its batch's NRef
            // crossed zero, so no thread can still reference the batch.
            freed += unsafe { free_batch_into(refs, &domain.pool, mag, &domain.stats) };
        }
        self.local_stats.on_free(&domain.stats, freed);
    }

    /// Crystalline-W slow-path protect: publish a request, let era
    /// advancers certify a raised access era, consume the certificate.
    fn protect_slow(&mut self, src: &Atomic<T>) -> Shared<T> {
        let domain = self.domain;
        let slot = &domain.slots[self.slot];
        loop {
            // Arm a fresh request: result word first (EMPTY | seq), then the
            // request itself — helpers check them in the same order. The
            // sequence is slot-resident and monotone, so a certificate can
            // never be matched to a request it was not produced for.
            let mut seq = slot.help_seq.load(Ordering::Relaxed).wrapping_add(1) & SEQ_MASK;
            if seq == 0 {
                seq = 1; // keep `req` distinguishable from "no request"
            }
            slot.help_seq.store(seq, Ordering::Relaxed);
            slot.result.store(EMPTY_BIT | seq, Ordering::SeqCst);
            slot.req.store(seq, Ordering::SeqCst);
            loop {
                let r = slot.result.load(Ordering::Acquire);
                if r & EMPTY_BIT == 0 {
                    // Certified: a helper raised our access to at least `r`
                    // *before* writing the certificate, so the reservation
                    // is already published. Reload the pointer under it.
                    self.access_cache = self.access_cache.max(r);
                    fence(Ordering::SeqCst);
                    let node = src.load(Ordering::Acquire);
                    if domain.era.current() <= r {
                        // era-at-load <= current era <= certified era <=
                        // published access: the protection invariant holds.
                        slot.req.store(0, Ordering::SeqCst);
                        return node;
                    }
                    break; // stale certificate — re-arm with a fresh seq
                }
                // Self-help one round (publish, then reload): liveness does
                // not depend on other threads allocating.
                let e = domain.era.current();
                touch_max(&slot.access, e);
                fence(Ordering::SeqCst);
                self.access_cache = self.access_cache.max(e);
                let node = src.load(Ordering::Acquire);
                if domain.era.current() == e {
                    slot.req.store(0, Ordering::SeqCst);
                    return node;
                }
            }
        }
    }
}

impl<T: Send + 'static, const HELPING: bool> SmrHandle<T> for CrystallineHandle<'_, T, HELPING> {
    fn enter(&mut self) {
        debug_assert!(!self.active, "enter while already inside an operation");
        self.domain.slots[self.slot].head.enter();
        self.handle = ptr::null_mut();
        self.active = true;
    }

    fn leave(&mut self) {
        debug_assert!(self.active, "leave without a matching enter");
        self.active = false;
        let slot = &self.domain.slots[self.slot];
        let old = slot.head.leave();
        // End this occupancy *before* collecting the cell: displacers
        // holding entries tagged with the old sequence may release them as
        // soon as the bump is visible, and any entry deposited after our
        // collect (by a retirer that saw a stale active head) becomes
        // releasable the same way.
        slot.seq.fetch_add(1, Ordering::SeqCst);
        let cell = HeadWord(slot.handoff.swap(0, Ordering::AcqRel));
        let cell_refs = cell.ptr::<SmrNode<T>>();
        if !cell_refs.is_null() {
            // SAFETY: the entry's deposit-time occupant is either this
            // handle (now leaving — by the SMR contract it no longer
            // dereferences protected pointers) or an earlier occupancy that
            // already left; releasing the cell's reference is safe.
            unsafe { adjust_refs(cell_refs, 1usize.wrapping_neg(), &mut self.reap) };
        }
        let head: *mut SmrNode<T> = old.ptr();
        if !head.is_null() {
            // SAFETY: `leave` detached the list; its nodes stay live until
            // this traversal applies our decrement to each batch.
            unsafe { self.traverse(head) };
        }
        self.handle = ptr::null_mut();
        self.drain();
    }

    fn trim(&mut self) {
        debug_assert!(self.active, "trim outside an operation");
        // §3.3-style trim of the retirement list only. The handoff cell is
        // deliberately *not* collected: its entry may guard pointers this
        // very occupancy read after the trim point, and the release
        // condition (occupancy sequence advanced) cannot hold while we are
        // still inside the operation.
        let head = self.domain.slots[self.slot].head.load(Ordering::Acquire);
        let curr: *mut SmrNode<T> = head.ptr();
        if curr != self.handle {
            debug_assert!(!curr.is_null());
            // SAFETY: we are still inside the operation, so the head and its
            // sublist are pinned by our slot's active reference.
            let next =
                unsafe { header(curr).word(W_NEXT).load(Ordering::Acquire) } as *mut SmrNode<T>;
            // SAFETY: as above — the sublist is pinned until traversed.
            unsafe { self.traverse(next) };
            self.handle = curr;
        }
        self.drain();
    }

    fn alloc(&mut self, value: T) -> Shared<T> {
        let domain = self.domain;
        self.alloc_counter += 1;
        if self.alloc_counter.is_multiple_of(domain.era_freq) {
            if HELPING {
                // Crystalline-W: complete pending protect requests before
                // advancing the era — advancers are the threads that can
                // starve a protect loop, so they help first.
                domain.help_pending();
            }
            domain.era.advance();
        }
        self.local_stats.on_alloc(&domain.stats);
        let node = domain.pool.alloc(&mut self.mag, &domain.stats, value);
        // SAFETY: `node` is a fresh, unshared allocation; stamping its birth
        // era in the header word races with nobody.
        unsafe {
            (*node.as_ptr())
                .header()
                .word(W_NEXT)
                .store(domain.era.current() as usize, Ordering::Relaxed);
        }
        Shared::from_node(node)
    }

    // SAFETY: per the `SmrHandle::dealloc` contract the node was never
    // published, so this thread owns it outright and may free it in place.
    unsafe fn dealloc(&mut self, ptr: Shared<T>) {
        let domain = self.domain;
        self.local_stats.on_dealloc(&domain.stats);
        domain.pool.dispose(&mut self.mag, &domain.stats, ptr.as_node_ptr(), true);
    }

    fn protect(&mut self, _idx: usize, src: &Atomic<T>) -> Shared<T> {
        let domain = self.domain;
        let slot = &domain.slots[self.slot];
        if !HELPING {
            // Crystalline-L: exactly the Hyaline-1S loop. The handle is the
            // slot's only access writer, so a plain store suffices and the
            // cache is exact.
            loop {
                let node = src.load(Ordering::Acquire);
                let alloc = domain.era.current();
                if self.access_cache >= alloc {
                    return node;
                }
                slot.access.store(alloc, Ordering::SeqCst);
                fence(Ordering::SeqCst);
                self.access_cache = alloc;
            }
        }
        // Crystalline-W fast path: identical shape, but *all* access
        // updates are CAS-max touches — a plain owner store could move the
        // access era backward past a helper's raise and un-protect a
        // helper-certified pointer.
        for _ in 0..PROTECT_FAST_ROUNDS {
            let node = src.load(Ordering::Acquire);
            let e = domain.era.current();
            if self.access_cache >= e {
                return node;
            }
            touch_max(&slot.access, e);
            fence(Ordering::SeqCst);
            self.access_cache = self.access_cache.max(e);
        }
        self.protect_slow(src)
    }

    // SAFETY: per the `SmrHandle::retire` contract the node is unlinked from
    // every shared structure, so batching it for deferred free is sound.
    unsafe fn retire(&mut self, ptr: Shared<T>) {
        debug_assert!(self.active, "retire outside an operation");
        let domain = self.domain;
        let node = ptr.as_node_ptr();
        let birth = header(node).word(W_NEXT).load(Ordering::Relaxed) as u64;
        self.local_stats.on_retire(&domain.stats);
        self.batch.push(node, birth, true);
        let target = domain.batch_min.max(domain.registry.claimed() + 1);
        if self.batch.count() >= target {
            let fin = self.batch.finalize(0);
            self.insert_batch(fin);
            self.drain();
        }
    }

    fn flush(&mut self) {
        self.finalize_partial();
        self.drain();
        let domain = self.domain;
        domain.pool.flush(&mut self.mag, &domain.stats);
        self.local_stats.flush(&domain.stats);
    }
}

impl<T: Send + 'static, const HELPING: bool> Drop for CrystallineHandle<'_, T, HELPING> {
    fn drop(&mut self) {
        if self.active {
            self.leave();
        }
        self.finalize_partial();
        self.drain();
        if !self.adopted.is_empty() {
            // Entries still guarding a live occupancy outlive this handle:
            // pass their references to the domain's orphan list, swept by
            // other handles' drains and finally by the domain's Drop.
            let mut orphans = self
                .domain
                .orphans
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            for (idx, tag, refs) in self.adopted.drain(..) {
                orphans.push((idx, tag, refs as usize));
            }
        }
        let domain = self.domain;
        domain.pool.flush(&mut self.mag, &domain.stats);
        self.local_stats.flush(&domain.stats);
        domain.registry.release(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    fn small_config() -> SmrConfig {
        SmrConfig {
            batch_min: 4,
            era_freq: 4,
            max_threads: 32,
            ..SmrConfig::default()
        }
    }

    /// Payload that counts drops through a shared counter, so tests can
    /// assert exact reclamation balance even after the domain is gone.
    struct Counted(Arc<AtomicU64>);
    impl Drop for Counted {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn capability_flags() {
        assert_eq!(<CrystallineL<u64> as Smr<u64>>::name(), "Crystalline-L");
        assert_eq!(<CrystallineW<u64> as Smr<u64>>::name(), "Crystalline-W");
        assert!(<CrystallineL<u64> as Smr<u64>>::robust());
        assert!(<CrystallineL<u64> as Smr<u64>>::wait_free_retire());
        assert!(<CrystallineW<u64> as Smr<u64>>::wait_free_retire());
        assert!(<CrystallineL<u64> as Smr<u64>>::supports_trim());
        assert!(<CrystallineL<u64> as Smr<u64>>::needs_seek_validation());
        assert!(!<CrystallineL<u64> as Smr<u64>>::shardable_by_pointer());
    }

    #[test]
    fn touch_max_never_lowers() {
        let a = AtomicU64::new(10);
        touch_max(&a, 5);
        assert_eq!(a.load(Ordering::SeqCst), 10);
        touch_max(&a, 17);
        assert_eq!(a.load(Ordering::SeqCst), 17);
    }

    #[test]
    fn single_thread_reclaims_everything() {
        let d: CrystallineL<u64> = Crystalline::with_config(small_config());
        {
            let mut h = d.handle();
            for i in 0..200u64 {
                h.enter();
                let node = h.alloc(i);
                // SAFETY: `node` was never published; no other reference exists.
                unsafe { h.retire(node) };
                h.leave();
            }
        }
        assert!(d.stats().balanced());
        assert_eq!(d.stats().allocated(), d.stats().freed());
    }

    #[test]
    fn forced_handoff_single_thread_reclaims_everything() {
        // handoff_attempts = 0: every insertion into an active slot goes
        // through the handoff cell, exercising deposit, displacement,
        // adoption (own occupancy) and release at leave.
        let d: CrystallineL<u64> = Crystalline::with_config(SmrConfig {
            handoff_attempts: 0,
            ..small_config()
        });
        {
            let mut h = d.handle();
            for i in 0..500u64 {
                h.enter();
                let node = h.alloc(i);
                // SAFETY: `node` was never published; no other reference exists.
                unsafe { h.retire(node) };
                h.leave();
            }
        }
        assert!(d.stats().balanced());
        assert_eq!(d.stats().allocated(), d.stats().freed());
    }

    #[test]
    fn stalled_thread_is_skipped_by_era() {
        let d = &CrystallineL::<u64>::with_config(small_config());
        let entered = &std::sync::Barrier::new(2);
        let done = &std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut stalled = d.handle();
                stalled.enter();
                entered.wait();
                done.wait();
                stalled.leave();
            });
            entered.wait();
            let mut worker = d.handle();
            for i in 0..10_000u64 {
                worker.enter();
                let node = worker.alloc(i);
                // SAFETY: `node` was never published; no other reference exists.
                unsafe { worker.retire(node) };
                worker.leave();
            }
            worker.flush();
            let unreclaimed = d.stats().unreclaimed();
            assert!(
                unreclaimed < 1_000,
                "stalled thread pinned {unreclaimed} nodes; Crystalline must be robust"
            );
            done.wait();
        });
        assert!(d.stats().balanced());
    }

    #[test]
    fn fresh_reader_is_tracked_not_skipped() {
        let d = &CrystallineW::<u64>::with_config(small_config());
        let published = &std::sync::Barrier::new(2);
        let protected = &std::sync::Barrier::new(2);
        let release = &std::sync::Barrier::new(2);
        let link = &Atomic::<u64>::null();
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut reader = d.handle();
                reader.enter();
                published.wait();
                let seen = reader.protect(0, link);
                assert!(!seen.is_null());
                // SAFETY: `seen` came from `protect` inside the operation.
                assert_eq!(unsafe { *seen.deref() }, 42);
                protected.wait();
                release.wait();
                // SAFETY: still protected — the era reservation pins `seen`.
                assert_eq!(unsafe { *seen.deref() }, 42);
                reader.leave();
            });
            let mut writer = d.handle();
            writer.enter();
            let node = writer.alloc(42);
            link.store(node, Ordering::Release);
            published.wait();
            protected.wait();
            let unlinked = link.swap(Shared::null(), Ordering::AcqRel);
            // SAFETY: the swap unlinked the node from the only shared link.
            unsafe { writer.retire(unlinked) };
            writer.leave();
            writer.flush();
            release.wait();
        });
        assert!(d.stats().balanced());
        assert_eq!(d.stats().allocated(), d.stats().freed());
    }

    #[test]
    fn multithreaded_stress_l() {
        let d = &CrystallineL::<u64>::with_config(small_config());
        std::thread::scope(|s| {
            for t in 0..8 {
                s.spawn(move || {
                    let mut h = d.handle();
                    for i in 0..2_000u64 {
                        h.enter();
                        let node = h.alloc(t * 1_000_000 + i);
                        // SAFETY: the node is thread-local until retired.
                        unsafe { h.retire(node) };
                        h.leave();
                    }
                });
            }
        });
        assert!(d.stats().balanced());
        assert_eq!(d.stats().allocated(), d.stats().freed());
    }

    #[test]
    fn multithreaded_stress_w_with_eager_eras() {
        // era_freq = 1 makes every alloc an era advance, so the helping
        // path runs constantly alongside protects.
        let d = &CrystallineW::<u64>::with_config(SmrConfig {
            era_freq: 1,
            ..small_config()
        });
        let link = &Atomic::<u64>::null();
        std::thread::scope(|s| {
            for t in 0..8 {
                s.spawn(move || {
                    let mut h = d.handle();
                    for i in 0..2_000u64 {
                        h.enter();
                        let node = h.alloc(t * 1_000_000 + i);
                        let old = link.swap(node, Ordering::AcqRel);
                        let _seen = h.protect(0, link);
                        if !old.is_null() {
                            // SAFETY: the swap took the only shared link to
                            // `old`; it is unreachable for later operations.
                            unsafe { h.retire(old) };
                        }
                        h.leave();
                    }
                });
            }
        });
        // Tear down the last published node.
        let mut h = d.handle();
        h.enter();
        let last = link.swap(Shared::null(), Ordering::AcqRel);
        if !last.is_null() {
            // SAFETY: the swap unlinked the node from the only shared link.
            unsafe { h.retire(last) };
        }
        h.leave();
        drop(h);
        assert!(d.stats().balanced());
        assert_eq!(d.stats().allocated(), d.stats().freed());
    }

    #[test]
    fn contended_forced_handoff_drops_every_payload() {
        // All insertions go through handoff cells under real contention;
        // exact payload-drop balance is checked after the domain drops
        // (floating cell entries and orphans are swept by then).
        let drops = Arc::new(AtomicU64::new(0));
        let allocs = AtomicU64::new(0);
        {
            let d = &CrystallineW::<Counted>::with_config(SmrConfig {
                handoff_attempts: 0,
                batch_min: 4,
                era_freq: 4,
                max_threads: 32,
                ..SmrConfig::default()
            });
            let link = &Atomic::<Counted>::null();
            let allocs = &allocs;
            let drops2 = &drops;
            std::thread::scope(|s| {
                for _ in 0..6 {
                    s.spawn(move || {
                        let mut h = d.handle();
                        for _ in 0..1_500 {
                            h.enter();
                            let node = h.alloc(Counted(Arc::clone(drops2)));
                            allocs.fetch_add(1, Ordering::Relaxed);
                            let old = link.swap(node, Ordering::AcqRel);
                            if !old.is_null() {
                                // SAFETY: the swap took the only shared link
                                // to `old`.
                                unsafe { h.retire(old) };
                            }
                            h.leave();
                        }
                    });
                }
            });
            let mut h = d.handle();
            h.enter();
            let last = link.swap(Shared::null(), Ordering::AcqRel);
            if !last.is_null() {
                // SAFETY: the swap unlinked the node from the only shared link.
                unsafe { h.retire(last) };
            }
            h.leave();
        }
        assert_eq!(
            drops.load(Ordering::Relaxed),
            allocs.load(Ordering::Relaxed),
            "every allocated payload must drop exactly once by domain teardown"
        );
    }

    #[test]
    fn trim_reclaims_mid_operation() {
        let d: CrystallineL<u64> = Crystalline::with_config(small_config());
        let mut h = d.handle();
        h.enter();
        for i in 0..64u64 {
            let node = h.alloc(i);
            // SAFETY: `node` was never published; no other reference exists.
            unsafe { h.retire(node) };
        }
        h.flush();
        h.trim();
        h.leave();
        drop(h);
        assert!(d.stats().balanced());
    }
}
