//! Leak and double-free detection across every scheme × structure
//! combination: every payload constructed must be dropped exactly once by
//! the time the structure and its domain are gone.

use hyaline::{Hyaline, Hyaline1, Hyaline1S, HyalineS};
use lockfree_ds::{BonsaiTree, HarrisMichaelList, MichaelHashMap, NatarajanMittalTree};
use smr_baselines::{Ebr, He, Hp, Ibr, Lfrc};
use smr_core::{Smr, SmrConfig, SmrHandle};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A payload that counts live instances; `Drop` panics on double-free.
#[derive(Debug)]
struct Tracked(Arc<AtomicI64>);

impl Tracked {
    fn new(counter: &Arc<AtomicI64>) -> Self {
        counter.fetch_add(1, Ordering::Relaxed);
        Tracked(Arc::clone(counter))
    }
}

impl Clone for Tracked {
    fn clone(&self) -> Self {
        self.0.fetch_add(1, Ordering::Relaxed);
        Tracked(Arc::clone(&self.0))
    }
}

impl Drop for Tracked {
    fn drop(&mut self) {
        let prev = self.0.fetch_sub(1, Ordering::Relaxed);
        assert!(prev > 0, "payload dropped twice");
    }
}

fn cfg() -> SmrConfig {
    SmrConfig {
        slots: 4,
        batch_min: 8,
        era_freq: 8,
        scan_threshold: 16,
        max_protect: 8,
        max_threads: 64,
        ..SmrConfig::default()
    }
}

const THREADS: u64 = 4;
const OPS: u64 = 1_500;
const KEYS: u64 = 64;

macro_rules! leak_test {
    ($name:ident, $map_ty:ident, $scheme:ty) => {
        #[test]
        fn $name() {
            let live = Arc::new(AtomicI64::new(0));
            {
                let map: $map_ty<u64, Tracked, $scheme> = $map_ty::with_config(cfg());
                let map = &map;
                let live = &live;
                std::thread::scope(|s| {
                    for t in 0..THREADS {
                        s.spawn(move || {
                            let mut h = map.smr_handle();
                            let mut x = (t + 1).wrapping_mul(0x9E3779B97F4A7C15) | 1;
                            for _ in 0..OPS {
                                x ^= x << 13;
                                x ^= x >> 7;
                                x ^= x << 17;
                                let key = x % KEYS;
                                h.enter();
                                match x % 3 {
                                    0 => {
                                        map.insert(&mut h, key, Tracked::new(live));
                                    }
                                    1 => {
                                        map.remove(&mut h, &key);
                                    }
                                    _ => {
                                        map.get(&mut h, &key);
                                    }
                                }
                                h.leave();
                            }
                        });
                    }
                });
                // The map (with remaining entries) and domain drop here.
            }
            assert_eq!(
                live.load(Ordering::Relaxed),
                0,
                "payloads leaked or double-dropped"
            );
        }
    };
}

// Harris–Michael list × all schemes.
leak_test!(list_hyaline, HarrisMichaelList, Hyaline<_>);
leak_test!(list_hyaline1, HarrisMichaelList, Hyaline1<_>);
leak_test!(list_hyaline_s, HarrisMichaelList, HyalineS<_>);
leak_test!(list_hyaline1_s, HarrisMichaelList, Hyaline1S<_>);
leak_test!(list_ebr, HarrisMichaelList, Ebr<_>);
leak_test!(list_hp, HarrisMichaelList, Hp<_>);
leak_test!(list_he, HarrisMichaelList, He<_>);
leak_test!(list_ibr, HarrisMichaelList, Ibr<_>);
leak_test!(list_lfrc, HarrisMichaelList, Lfrc<_>);

// Michael hash map × all schemes.
leak_test!(hashmap_hyaline, MichaelHashMap, Hyaline<_>);
leak_test!(hashmap_hyaline1, MichaelHashMap, Hyaline1<_>);
leak_test!(hashmap_hyaline_s, MichaelHashMap, HyalineS<_>);
leak_test!(hashmap_hyaline1_s, MichaelHashMap, Hyaline1S<_>);
leak_test!(hashmap_ebr, MichaelHashMap, Ebr<_>);
leak_test!(hashmap_hp, MichaelHashMap, Hp<_>);
leak_test!(hashmap_he, MichaelHashMap, He<_>);
leak_test!(hashmap_ibr, MichaelHashMap, Ibr<_>);
leak_test!(hashmap_lfrc, MichaelHashMap, Lfrc<_>);

// Natarajan–Mittal tree × all schemes.
leak_test!(nmtree_hyaline, NatarajanMittalTree, Hyaline<_>);
leak_test!(nmtree_hyaline1, NatarajanMittalTree, Hyaline1<_>);
leak_test!(nmtree_hyaline_s, NatarajanMittalTree, HyalineS<_>);
leak_test!(nmtree_hyaline1_s, NatarajanMittalTree, Hyaline1S<_>);
leak_test!(nmtree_ebr, NatarajanMittalTree, Ebr<_>);
leak_test!(nmtree_hp, NatarajanMittalTree, Hp<_>);
leak_test!(nmtree_he, NatarajanMittalTree, He<_>);
leak_test!(nmtree_ibr, NatarajanMittalTree, Ibr<_>);

// Bonsai tree × the schemes that support snapshot traversal (paper: no
// HP/HE; LFRC likewise cannot pin a whole path).
leak_test!(bonsai_hyaline, BonsaiTree, Hyaline<_>);
leak_test!(bonsai_hyaline1, BonsaiTree, Hyaline1<_>);
leak_test!(bonsai_hyaline_s, BonsaiTree, HyalineS<_>);
leak_test!(bonsai_hyaline1_s, BonsaiTree, Hyaline1S<_>);
leak_test!(bonsai_ebr, BonsaiTree, Ebr<_>);
leak_test!(bonsai_ibr, BonsaiTree, Ibr<_>);

/// After a quiescent churn (all threads left, handles flushed), Hyaline must
/// have freed everything through the reclamation path — stats must balance
/// without waiting for the domain drop.
#[test]
fn hyaline_quiescent_balance() {
    let map: MichaelHashMap<u64, u64, Hyaline<_>> = MichaelHashMap::with_config(cfg());
    let map = &map;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                let mut h = map.smr_handle();
                for i in 0..OPS {
                    let key = (t * OPS + i) % KEYS;
                    h.enter();
                    map.insert(&mut h, key, key);
                    h.leave();
                    h.enter();
                    map.remove(&mut h, &key);
                    h.leave();
                }
            });
        }
    });
    let stats = map.domain().stats();
    assert_eq!(
        stats.unreclaimed(),
        0,
        "retired nodes left pinned after quiescence"
    );
}
