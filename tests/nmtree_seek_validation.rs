//! Regression tests for the Natarajan–Mittal seek validation.
//!
//! A deletion's `cleanup` freezes the doomed chain (TAG/FLAG bits) and swings
//! the deepest clean ancestor edge over it. Frozen edges never change again,
//! so a traversal that already descended past the swing point keeps walking
//! through **unlinked, retired** nodes — and for schemes that publish
//! protection per access (HP hazards, HE eras, Hyaline-S access eras), a
//! protection published *after* the node was retired is invisible to the
//! reclaimer. The fix is `Smr::needs_seek_validation`: after each new
//! protection, `seek` re-reads the parent edge and the recorded deepest
//! clean edge, restarting from the root if either changed.
//!
//! These tests drive exactly the racy pattern — concurrent removes churning
//! chains under concurrent seeks, oversubscribed so threads preempt inside
//! the window — with `Canary` values, so a use-after-free surfaces as a
//! checksum panic rather than silent garbage. (The original bug was caught
//! by AddressSanitizer within a minute of this workload; with validation it
//! survives indefinitely.)

use hyaline::{Hyaline, Hyaline1, Hyaline1S, HyalineS};
use lockfree_ds::{NatarajanMittalTree, NmNode};
use smr_baselines::{Ebr, He, Hp, Ibr, Leaky, Lfrc};
use smr_core::{Smr, SmrConfig, SmrHandle};

type Tree<S> = NatarajanMittalTree<u64, u64, S>;

fn cfg() -> SmrConfig {
    SmrConfig {
        slots: 2,
        batch_min: 4,
        era_freq: 2,       // fast-moving clock widens the stale-era window
        scan_threshold: 8, // frequent scans widen the free-early window
        ack_threshold: 64,
        max_protect: 8,
        max_threads: 64,
        ..SmrConfig::default()
    }
}

/// Oversubscribed churn on a tiny key range: every operation collides with
/// deletions, so seeks constantly cross frozen chains.
fn churn<S: Smr<NmNode<u64, u64>>>(threads: u64, ops: u64, range: u64) {
    let tree: &Tree<S> = &NatarajanMittalTree::with_config(cfg());
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let mut h = tree.smr_handle();
                let mut x = (t + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                for _ in 0..ops {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = x % range;
                    h.enter();
                    match x % 4 {
                        0 | 1 => {
                            tree.remove(&mut h, &key);
                        }
                        2 => {
                            tree.insert(&mut h, key, key.wrapping_mul(0x5DEECE66D));
                        }
                        _ => {
                            if let Some(v) = tree.get(&mut h, &key) {
                                assert_eq!(
                                    v,
                                    key.wrapping_mul(0x5DEECE66D),
                                    "torn or reused value for key {key}"
                                );
                            }
                        }
                    }
                    h.leave();
                }
            });
        }
    });
    // All worker handles dropped; a fresh handle's flush adopts any orphaned
    // limbo lists. With no reservations left, everything retired must free.
    let mut sweeper = tree.smr_handle();
    sweeper.flush();
    drop(sweeper);
    let stats = tree.domain().stats();
    assert_eq!(
        stats.unreclaimed(),
        0,
        "{}: {} retired nodes unreclaimed after quiescence",
        S::name(),
        stats.unreclaimed()
    );
}

#[test]
fn validation_flags_match_protection_model() {
    // Per-access protection publishes too late for frozen-chain descents.
    assert!(Hp::<NmNode<u64, u64>>::needs_seek_validation());
    assert!(He::<NmNode<u64, u64>>::needs_seek_validation());
    assert!(HyalineS::<NmNode<u64, u64>>::needs_seek_validation());
    assert!(Hyaline1S::<NmNode<u64, u64>>::needs_seek_validation());
    // This LFRC counts active references, not links: a count taken through a
    // frozen edge can land on a recycled type-stable node.
    assert!(Lfrc::<NmNode<u64, u64>>::needs_seek_validation());
    // Enter-scoped reservations cover everything retired after `enter`.
    assert!(!Hyaline::<NmNode<u64, u64>>::needs_seek_validation());
    assert!(!Hyaline1::<NmNode<u64, u64>>::needs_seek_validation());
    assert!(!Ebr::<NmNode<u64, u64>>::needs_seek_validation());
    assert!(!Leaky::<NmNode<u64, u64>>::needs_seek_validation());
    // 2GE-IBR reserves the interval [enter-era, now], which overlaps the
    // lifetime of any node reachable when the operation began.
    assert!(!Ibr::<NmNode<u64, u64>>::needs_seek_validation());
}

#[test]
fn hp_oversubscribed_delete_churn() {
    churn::<Hp<_>>(8, 4_000, 32);
}

#[test]
fn he_oversubscribed_delete_churn() {
    churn::<He<_>>(8, 4_000, 32);
}

#[test]
fn hyaline_s_oversubscribed_delete_churn() {
    churn::<HyalineS<_>>(8, 4_000, 32);
}

#[test]
fn hyaline_1s_oversubscribed_delete_churn() {
    churn::<Hyaline1S<_>>(8, 4_000, 32);
}

#[test]
fn ibr_oversubscribed_delete_churn() {
    churn::<Ibr<_>>(8, 4_000, 32);
}

#[test]
fn deep_frozen_chains_under_hp() {
    // Sequential keys build a degenerate (path-shaped) region; removing them
    // in clusters creates long doomed chains, maximizing the time seeks
    // spend inside frozen regions.
    let tree: &Tree<Hp<_>> = &NatarajanMittalTree::with_config(cfg());
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                let mut h = tree.smr_handle();
                for round in 0..60u64 {
                    let base = (t * 61 + round) % 64;
                    h.enter();
                    for k in base..base + 16 {
                        tree.insert(&mut h, k, k.wrapping_mul(0x5DEECE66D));
                    }
                    h.leave();
                    h.enter();
                    for k in base..base + 16 {
                        if let Some(v) = tree.remove(&mut h, &k) {
                            assert_eq!(v, k.wrapping_mul(0x5DEECE66D));
                        }
                    }
                    h.leave();
                }
            });
        }
    });
    let mut sweeper = tree.smr_handle();
    sweeper.flush();
    drop(sweeper);
    assert_eq!(tree.domain().stats().unreclaimed(), 0);
}
