//! Property-based tests on the public invariants of the core building
//! blocks: packed head words, token provenance, workload generation,
//! statistics accounting, and configuration arithmetic.

use hyaline::head::{Head1Word, HeadWord, MAX_REFS, PTR_MASK};
use proptest::prelude::*;
use smr_core::{LocalStats, SmrConfig, SmrStats};
use smr_testkit::oracle::{MapOp, MapOutcome, OpSequence, SequentialOracle};
use smr_testkit::TokenMint;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `[HRef, HPtr]` packing is lossless for every in-range pair.
    #[test]
    fn head_word_roundtrip(refs in 0usize..=MAX_REFS, ptr in 0usize..=PTR_MASK) {
        let w = HeadWord::pack(refs, ptr);
        prop_assert_eq!(w.refs(), refs);
        prop_assert_eq!(w.ptr_bits(), ptr);
    }

    /// `with_refs` / `with_ptr` update one field and preserve the other.
    #[test]
    fn head_word_field_updates(
        refs in 0usize..=MAX_REFS,
        ptr in 0usize..=PTR_MASK,
        refs2 in 0usize..=MAX_REFS,
    ) {
        let w = HeadWord::pack(refs, ptr);
        let w2 = w.with_refs(refs2);
        prop_assert_eq!(w2.refs(), refs2);
        prop_assert_eq!(w2.ptr_bits(), ptr);
        let w3 = w.with_ptr((ptr & !7) as *mut u8);
        prop_assert_eq!(w3.refs(), refs);
        prop_assert_eq!(w3.ptr_bits(), ptr & !7);
    }

    /// Hyaline-1's single-bit head: the active flag never leaks into the
    /// pointer and vice versa (pointers are at least 2-aligned).
    #[test]
    fn head1_word_roundtrip(
        raw in (0usize..=PTR_MASK).prop_map(|p| p & !1),
        active in any::<bool>(),
    ) {
        let w = Head1Word::pack(active, raw as *mut u8);
        prop_assert_eq!(w.active(), active);
        prop_assert_eq!(w.ptr::<u8>() as usize, raw);
    }

    /// Every minted token validates under its key and fails under others.
    #[test]
    fn tokens_validate_only_under_their_key(
        key in 0u64..=TokenMint::MAX_KEY,
        other in 0u64..=TokenMint::MAX_KEY,
    ) {
        let mint = TokenMint::new();
        let token = mint.mint(key);
        prop_assert!(mint.validate(key, token).is_ok());
        prop_assert_eq!(TokenMint::key_of(token), key);
        if other != key {
            prop_assert!(mint.validate(other, token).is_err());
        }
    }

    /// Random bit patterns essentially never validate (seal strength).
    #[test]
    fn garbage_tokens_rejected(bits in any::<u64>()) {
        let mint = TokenMint::new();
        // One in 256 random patterns may pass the 8-bit seal; tolerate that
        // by only requiring rejection when the seal mismatches, and assert
        // the converse: a pattern that validates must decode to its own key.
        if mint.validate(TokenMint::key_of(bits), bits).is_ok() {
            prop_assert_eq!(TokenMint::key_of(bits), bits & TokenMint::MAX_KEY);
        }
    }

    /// The workload generator is a pure function of its seed.
    #[test]
    fn op_sequences_deterministic(seed in any::<u64>(), n in 1usize..200) {
        let a: Vec<MapOp> = OpSequence::new(seed, 128, 300).take(n).collect();
        let b: Vec<MapOp> = OpSequence::new(seed, 128, 300).take(n).collect();
        prop_assert_eq!(a, b);
    }

    /// The sequential oracle behaves exactly like `BTreeMap` with
    /// insert-if-absent semantics.
    #[test]
    fn oracle_matches_btreemap(ops in prop::collection::vec(
        prop_oneof![
            (0u64..16).prop_map(MapOp::Get),
            (0u64..16, any::<u64>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
            (0u64..16).prop_map(MapOp::Remove),
        ],
        0..100,
    )) {
        let mut oracle = SequentialOracle::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in ops {
            let got = oracle.apply(op);
            let want = match op {
                MapOp::Get(k) => MapOutcome::Found(model.get(&k).copied()),
                MapOp::Insert(k, v) => {
                    if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k) {
                        e.insert(v);
                        MapOutcome::Inserted(true)
                    } else {
                        MapOutcome::Inserted(false)
                    }
                }
                MapOp::Remove(k) => MapOutcome::Removed(model.remove(&k)),
            };
            prop_assert_eq!(got, want);
        }
        prop_assert_eq!(oracle.len(), model.len());
    }

    /// Buffered local statistics always flush to the same totals as direct
    /// accounting, for any event interleaving and flush points.
    #[test]
    fn local_stats_flush_equals_direct(events in prop::collection::vec(0u8..5, 0..300)) {
        let buffered = SmrStats::new();
        let direct = SmrStats::new();
        let mut local = LocalStats::new();
        for e in &events {
            match e {
                0 => {
                    local.on_alloc(&buffered);
                    direct.add_allocated(1);
                }
                1 => {
                    local.on_retire(&buffered);
                    direct.add_retired(1);
                }
                2 => {
                    local.on_free(&buffered, 3);
                    direct.add_freed(3);
                }
                3 => {
                    local.on_dealloc(&buffered);
                    direct.add_deallocated(1);
                }
                _ => local.flush(&buffered),
            }
        }
        local.flush(&buffered);
        prop_assert_eq!(buffered.allocated(), direct.allocated());
        prop_assert_eq!(buffered.retired(), direct.retired());
        prop_assert_eq!(buffered.freed(), direct.freed());
        prop_assert_eq!(buffered.deallocated(), direct.deallocated());
        prop_assert_eq!(buffered.unreclaimed(), direct.unreclaimed());
    }

    /// `effective_batch_size` always satisfies the paper's batch > slots
    /// requirement and never shrinks below the configured minimum.
    #[test]
    fn effective_batch_size_invariants(
        slots_pow in 0u32..10,
        batch_min in 1usize..512,
    ) {
        let slots = 1usize << slots_pow;
        let cfg = SmrConfig { slots, batch_min, ..SmrConfig::default() };
        let eff = cfg.effective_batch_size();
        prop_assert!(eff > slots, "batch must exceed slot count");
        prop_assert!(eff >= batch_min);
        prop_assert_eq!(eff, batch_min.max(slots + 1));
    }
}

/// Tokens minted concurrently from many threads never collide.
#[test]
fn concurrent_tokens_never_collide() {
    let mint = &TokenMint::new();
    let sets: Vec<Vec<u64>> = std::thread::scope(|s| {
        (0..4)
            .map(|_| {
                s.spawn(move || (0..5_000).map(|i| mint.mint(i % 100)).collect::<Vec<_>>())
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });
    let mut all = std::collections::HashSet::new();
    for set in sets {
        for t in set {
            assert!(all.insert(t), "token collision: {t:#x}");
        }
    }
    assert_eq!(all.len(), 20_000);
}
