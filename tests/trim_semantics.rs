//! §3.3 trimming semantics across the Hyaline variants: `trim` must let
//! previously retired nodes reclaim *without* ending the operation, must
//! keep protected access safe, and must behave like `leave`+`enter` for
//! non-Hyaline schemes (the trait default).

use hyaline::{Hyaline, Hyaline1, Hyaline1S, HyalineS};
use lockfree_ds::{ConcurrentMap, MichaelHashMap};
use smr_baselines::Ebr;
use smr_core::{Smr, SmrConfig, SmrHandle};

fn cfg() -> SmrConfig {
    SmrConfig {
        slots: 2,
        batch_min: 4,
        era_freq: 8,
        scan_threshold: 8,
        max_threads: 32,
        ..SmrConfig::default()
    }
}

/// A long operation window using trim reclaims its own churn.
fn trim_reclaims<S>()
where
    S: Smr<lockfree_ds::ListNode<u64, u64>>,
{
    let map: MichaelHashMap<u64, u64, S> = MichaelHashMap::with_config_and_buckets(cfg(), 32);
    let mut h = map.smr_handle();
    h.enter();
    for i in 0..2_000u64 {
        let key = i % 64;
        map.map_insert(&mut h, key, i);
        map.map_remove(&mut h, key);
        h.trim();
    }
    h.flush();
    let pinned_during = map.stats().unreclaimed();
    h.leave();
    h.flush();
    assert!(
        pinned_during < 1_000,
        "trim failed to reclaim inside the window: {pinned_during} pinned"
    );
    assert_eq!(map.stats().unreclaimed(), 0, "leftovers after leave");
}

#[test]
fn trim_reclaims_hyaline() {
    assert!(<Hyaline<u64> as Smr<u64>>::supports_trim());
    trim_reclaims::<Hyaline<_>>();
}

#[test]
fn trim_reclaims_hyaline1() {
    assert!(<Hyaline1<u64> as Smr<u64>>::supports_trim());
    trim_reclaims::<Hyaline1<_>>();
}

#[test]
fn trim_reclaims_hyaline_s() {
    assert!(<HyalineS<u64> as Smr<u64>>::supports_trim());
    trim_reclaims::<HyalineS<_>>();
}

#[test]
fn trim_reclaims_hyaline1_s() {
    assert!(<Hyaline1S<u64> as Smr<u64>>::supports_trim());
    trim_reclaims::<Hyaline1S<_>>();
}

#[test]
fn trim_default_is_leave_enter() {
    assert!(!<Ebr<u64> as Smr<u64>>::supports_trim());
    // Behaviorally identical test: EBR's default trim (leave+enter) also
    // lets its own churn reclaim inside the window.
    trim_reclaims::<Ebr<_>>();
}

/// Without trim (or leave), a long operation window pins everything —
/// the contrast that makes trim meaningful.
#[test]
fn long_window_without_trim_pins() {
    let map: MichaelHashMap<u64, u64, Hyaline<_>> =
        MichaelHashMap::with_config_and_buckets(cfg(), 32);
    let mut h = map.smr_handle();
    let mut other = map.smr_handle();
    other.enter(); // a second active thread shares the window
    h.enter();
    for i in 0..2_000u64 {
        let key = i % 64;
        map.map_insert(&mut h, key, i);
        map.map_remove(&mut h, key);
        // no trim, no leave
    }
    h.flush();
    let pinned = map.stats().unreclaimed();
    assert!(
        pinned > 1_000,
        "expected a long no-trim window to pin retired nodes, got {pinned}"
    );
    h.leave();
    other.leave();
}

/// Trim inside a window must not reclaim nodes another active thread still
/// protects (safety under concurrency).
#[test]
fn trim_respects_concurrent_readers() {
    let map: &MichaelHashMap<u64, u64, Hyaline<_>> =
        &MichaelHashMap::with_config_and_buckets(cfg(), 32);
    let inserted = &std::sync::Barrier::new(2);
    let observed = &std::sync::Barrier::new(2);
    let trimmed = &std::sync::Barrier::new(2);
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut reader = map.smr_handle();
            reader.enter();
            inserted.wait();
            let value = map.map_get(&mut reader, 1);
            assert_eq!(value, Some(10));
            observed.wait();
            trimmed.wait();
            reader.leave();
        });
        let mut writer = map.smr_handle();
        writer.enter();
        map.map_insert(&mut writer, 1, 10);
        inserted.wait();
        observed.wait();
        // Remove and churn through several trims while the reader is in.
        map.map_remove(&mut writer, 1);
        for i in 0..200u64 {
            map.map_insert(&mut writer, 2 + i % 16, i);
            map.map_remove(&mut writer, 2 + i % 16);
            writer.trim();
        }
        trimmed.wait();
        writer.leave();
    });
    let mut h = map.smr_handle();
    h.flush();
    assert_eq!(map.stats().unreclaimed(), 0);
}
