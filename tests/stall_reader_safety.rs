//! Reader safety under deterministic stalls: the core SMR contract.
//!
//! A reader protects a pointer, then stalls indefinitely (the paper's
//! robustness adversary). A writer unlinks and retires the pointed-to node
//! and churns hard enough to drive many reclamation cycles. When the reader
//! finally wakes, its protected pointer must still dereference to intact
//! memory — for *every* scheme: non-robust schemes pin via the reservation,
//! robust schemes must keep exactly this node while reclaiming the rest.
//!
//! Payloads are [`smr_testkit::Canary`]s, so a violation is a failed
//! checksum (poisoned or reused memory) rather than silent garbage.

use hyaline::{Hyaline, Hyaline1, Hyaline1S, HyalineS};
use smr_baselines::{Ebr, He, Hp, Ibr, Lfrc};
use smr_core::{Atomic, Smr, SmrConfig, SmrHandle};
use smr_testkit::{Canary, StallPoint};
use std::sync::atomic::Ordering;

const CHURN: u64 = 20_000;

fn cfg() -> SmrConfig {
    SmrConfig {
        slots: 2,
        batch_min: 4,
        era_freq: 8,
        scan_threshold: 16,
        ack_threshold: 64,
        max_threads: 16,
        ..SmrConfig::default()
    }
}

/// The protected-pointer-survives-stall scenario for one scheme.
fn protected_survives_stall<S: Smr<Canary>>(config: SmrConfig) {
    let domain = &S::with_config(config);
    let link = &Atomic::<Canary>::null();
    let stall = &StallPoint::new();

    std::thread::scope(|s| {
        // Reader: protect the published node, then stall inside the
        // operation while holding the protection.
        s.spawn(move || {
            let mut h = domain.handle();
            h.enter();
            let mut seen = h.protect(0, link);
            while seen.is_null() {
                seen = h.protect(0, link);
            }
            // Validate before the stall: the node is alive.
            unsafe { seen.deref() }.check().expect("pre-stall canary");
            stall.stall();
            // The writer has unlinked, retired, and churned; our protection
            // must still hold the node intact.
            unsafe { seen.deref() }
                .check()
                .expect("post-stall canary: protected node was reclaimed");
            h.leave();
        });

        // Writer: publish, wait for the reader to park, unlink + retire the
        // node, then churn to force reclamation cycles.
        let mut h = domain.handle();
        h.enter();
        let node = h.alloc(Canary::new(7));
        link.store(node, Ordering::Release);
        h.leave();

        stall.wait_until_stalled();

        h.enter();
        let unlinked = link.swap(smr_core::Shared::null(), Ordering::AcqRel);
        assert!(!unlinked.is_null());
        unsafe { h.retire(unlinked) };
        h.leave();

        for i in 0..CHURN {
            h.enter();
            let n = h.alloc(Canary::new(i));
            unsafe { h.retire(n) };
            h.leave();
        }
        h.flush();
        stall.release();
        drop(h);
    });

    // Handle-drop order between the two threads is arbitrary: if the writer
    // dropped while the reader was still inside its operation, the pinned
    // nodes were pushed onto the domain's orphan list. A fresh handle's scan
    // adopts and frees them now that every reservation is gone.
    let mut sweeper = domain.handle();
    sweeper.flush();
    drop(sweeper);

    let stats = domain.stats();
    assert!(
        stats.balanced(),
        "scheme leaked after quiescence: allocated {} freed {} deallocated {}",
        stats.allocated(),
        stats.freed(),
        stats.deallocated()
    );
}

/// Robust schemes must additionally have reclaimed almost all churned nodes
/// *while* the reader was stalled.
fn robust_reclaims_during_stall<S: Smr<Canary>>(config: SmrConfig) {
    assert!(S::robust(), "test is only meaningful for robust schemes");
    let domain = &S::with_config(config);
    let link = &Atomic::<Canary>::null();
    let stall = &StallPoint::new();

    std::thread::scope(|s| {
        s.spawn(move || {
            let mut h = domain.handle();
            h.enter();
            let mut seen = h.protect(0, link);
            while seen.is_null() {
                seen = h.protect(0, link);
            }
            stall.stall();
            unsafe { seen.deref() }.check().expect("post-stall canary");
            h.leave();
        });

        let mut h = domain.handle();
        h.enter();
        let node = h.alloc(Canary::new(7));
        link.store(node, Ordering::Release);
        h.leave();

        stall.wait_until_stalled();

        h.enter();
        let unlinked = link.swap(smr_core::Shared::null(), Ordering::AcqRel);
        unsafe { h.retire(unlinked) };
        h.leave();

        for i in 0..CHURN {
            h.enter();
            let n = h.alloc(Canary::new(i));
            unsafe { h.retire(n) };
            h.leave();
        }
        h.flush();

        // While the reader is still stalled: nearly everything churned after
        // the reader's eras went stale must have been reclaimed.
        let unreclaimed = domain.stats().unreclaimed();
        assert!(
            unreclaimed < CHURN / 10,
            "{}: stalled reader pinned {unreclaimed} of {CHURN} churned nodes",
            S::name()
        );

        stall.release();
        drop(h);
    });
    // See `protected_survives_stall`: adopt any orphaned limbo before the
    // balance check.
    let mut sweeper = domain.handle();
    sweeper.flush();
    drop(sweeper);
    assert!(domain.stats().balanced());
}

#[test]
fn protected_survives_stall_hyaline() {
    protected_survives_stall::<Hyaline<Canary>>(cfg());
}

#[test]
fn protected_survives_stall_hyaline1() {
    protected_survives_stall::<Hyaline1<Canary>>(cfg());
}

#[test]
fn protected_survives_stall_hyaline_s() {
    protected_survives_stall::<HyalineS<Canary>>(cfg());
}

#[test]
fn protected_survives_stall_hyaline_s_adaptive() {
    protected_survives_stall::<HyalineS<Canary>>(SmrConfig {
        adaptive: true,
        ..cfg()
    });
}

#[test]
fn protected_survives_stall_hyaline_1s() {
    protected_survives_stall::<Hyaline1S<Canary>>(cfg());
}

#[test]
fn protected_survives_stall_ebr() {
    protected_survives_stall::<Ebr<Canary>>(cfg());
}

#[test]
fn protected_survives_stall_hp() {
    protected_survives_stall::<Hp<Canary>>(cfg());
}

#[test]
fn protected_survives_stall_he() {
    protected_survives_stall::<He<Canary>>(cfg());
}

#[test]
fn protected_survives_stall_ibr() {
    protected_survives_stall::<Ibr<Canary>>(cfg());
}

#[test]
fn protected_survives_stall_lfrc() {
    protected_survives_stall::<Lfrc<Canary>>(cfg());
}

#[test]
fn stalled_reader_bounded_hyaline_s() {
    robust_reclaims_during_stall::<HyalineS<Canary>>(cfg());
}

#[test]
fn stalled_reader_bounded_hyaline_s_adaptive() {
    robust_reclaims_during_stall::<HyalineS<Canary>>(SmrConfig {
        adaptive: true,
        ..cfg()
    });
}

#[test]
fn stalled_reader_bounded_hyaline_1s() {
    robust_reclaims_during_stall::<Hyaline1S<Canary>>(cfg());
}

#[test]
fn stalled_reader_bounded_hp() {
    robust_reclaims_during_stall::<Hp<Canary>>(cfg());
}

#[test]
fn stalled_reader_bounded_he() {
    robust_reclaims_during_stall::<He<Canary>>(cfg());
}

#[test]
fn stalled_reader_bounded_ibr() {
    robust_reclaims_during_stall::<Ibr<Canary>>(cfg());
}
