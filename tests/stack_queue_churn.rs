//! Cross-scheme churn for the Treiber stack and Michael–Scott queue with
//! checksummed payloads.
//!
//! These two structures are the smallest realistic SMR clients, and the MS
//! queue in particular exercises a validation subtlety: a dequeued
//! sentinel's `next` field is frozen, so a consumer that protected `next`
//! through a stale sentinel must re-validate `head` before dereferencing
//! (Michael's step D07). Racing consumers against producers with `Canary`
//! values turns a missed validation into a checksum panic.

use hyaline::{Hyaline, Hyaline1, Hyaline1S, HyalineS};
use lockfree_ds::{MsQueue, QueueNode, StackNode, TreiberStack};
use smr_baselines::{Ebr, He, Hp, Ibr, Leaky, Lfrc};
use smr_core::{Smr, SmrConfig, SmrHandle};
use smr_testkit::Canary;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn cfg() -> SmrConfig {
    SmrConfig {
        slots: 2,
        batch_min: 4,
        era_freq: 4,
        scan_threshold: 8,
        ack_threshold: 64,
        max_threads: 32,
        ..SmrConfig::default()
    }
}

/// Producers push/enqueue tagged canaries; consumers pop/dequeue and verify
/// both the checksum and the tag range. Conservation is checked at the end.
fn queue_churn<S: Smr<QueueNode<Arc<Canary>>>>() {
    const PER_PRODUCER: u64 = 2_000;
    let q: &MsQueue<Arc<Canary>, S> = &MsQueue::with_config(cfg());
    let consumed = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..2u64 {
            s.spawn(move || {
                let mut h = q.smr_handle();
                for i in 0..PER_PRODUCER {
                    h.enter();
                    q.enqueue(&mut h, Arc::new(Canary::new(t * PER_PRODUCER + i)));
                    h.leave();
                }
            });
        }
        for _ in 0..2 {
            s.spawn(|| {
                let mut h = q.smr_handle();
                let mut got = 0;
                while got < PER_PRODUCER {
                    h.enter();
                    if let Some(c) = q.dequeue(&mut h) {
                        let v = c.check().expect("dequeued canary intact");
                        assert!(v < 2 * PER_PRODUCER, "value out of range");
                        got += 1;
                    }
                    h.leave();
                }
                consumed.fetch_add(got, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(consumed.load(Ordering::Relaxed), 2 * PER_PRODUCER);
    let mut h = q.smr_handle();
    h.enter();
    assert!(q.is_empty(&mut h));
    h.leave();
}

fn stack_churn<S: Smr<StackNode<Arc<Canary>>>>() {
    const PER_PRODUCER: u64 = 2_000;
    let st: &TreiberStack<Arc<Canary>, S> = &TreiberStack::with_config(cfg());
    let consumed = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..2u64 {
            s.spawn(move || {
                let mut h = st.smr_handle();
                for i in 0..PER_PRODUCER {
                    h.enter();
                    st.push(&mut h, Arc::new(Canary::new(t * PER_PRODUCER + i)));
                    h.leave();
                }
            });
        }
        for _ in 0..2 {
            s.spawn(|| {
                let mut h = st.smr_handle();
                let mut got = 0;
                while got < PER_PRODUCER {
                    h.enter();
                    if let Some(c) = st.pop(&mut h) {
                        c.check().expect("popped canary intact");
                        got += 1;
                    }
                    h.leave();
                }
                consumed.fetch_add(got, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(consumed.load(Ordering::Relaxed), 2 * PER_PRODUCER);
    assert!(st.is_empty());
}

macro_rules! churn_tests {
    ($($name:ident => $scheme:ty),+ $(,)?) => {
        mod queue {
            use super::*;
            $(#[test]
            fn $name() {
                queue_churn::<$scheme>();
            })+
        }
        mod stack {
            use super::*;
            $(#[test]
            fn $name() {
                stack_churn::<$scheme>();
            })+
        }
    };
}

churn_tests! {
    hyaline => Hyaline<_>,
    hyaline1 => Hyaline1<_>,
    hyaline_s => HyalineS<_>,
    hyaline_1s => Hyaline1S<_>,
    epoch => Ebr<_>,
    hp => Hp<_>,
    he => He<_>,
    ibr => Ibr<_>,
    lfrc => Lfrc<_>,
    leaky => Leaky<_>,
}
