//! Transparency tests (paper §2.4): threads — i.e. handles — created and
//! destroyed dynamically, with retired nodes in flight, must neither block
//! nor leave memory permanently unreclaimed, across all schemes.

use hyaline::{Hyaline, Hyaline1, Hyaline1S, HyalineS};
use lockfree_ds::{MichaelHashMap, TreiberStack};
use smr_baselines::{Ebr, He, Hp, Ibr};
use smr_core::{Smr, SmrConfig, SmrHandle};
use std::sync::atomic::{AtomicU64, Ordering};

fn cfg() -> SmrConfig {
    SmrConfig {
        slots: 4,
        batch_min: 8,
        era_freq: 8,
        scan_threshold: 16,
        max_threads: 64,
        ..SmrConfig::default()
    }
}

/// Creates and destroys many short-lived handles, each retiring a few
/// nodes, while long-lived reader handles are active on other threads.
fn handle_churn<S: Smr<lockfree_ds::ListNode<u64, u64>>>() -> u64 {
    let map: MichaelHashMap<u64, u64, S> = MichaelHashMap::with_config_and_buckets(cfg(), 64);
    let map = &map;
    let stop = &AtomicU64::new(0);
    std::thread::scope(|s| {
        // Long-lived readers enter and leave continuously.
        for _ in 0..2 {
            s.spawn(move || {
                let mut h = map.smr_handle();
                while stop.load(Ordering::Acquire) == 0 {
                    h.enter();
                    map.get(&mut h, &7);
                    h.leave();
                }
            });
        }
        // Sessions: a fresh handle for every burst of operations.
        for _ in 0..2 {
            s.spawn(move || {
                for round in 0..150u64 {
                    let mut h = map.smr_handle();
                    for i in 0..20 {
                        let key = (round * 20 + i) % 256;
                        h.enter();
                        map.insert(&mut h, key, key);
                        h.leave();
                        h.enter();
                        map.remove(&mut h, &key);
                        h.leave();
                    }
                    // The handle drops here with a partial batch / limbo
                    // list; this must not block and must not strand nodes.
                }
                stop.fetch_add(1, Ordering::Release);
            });
        }
    });
    // One final handle adopts and flushes whatever is left.
    let mut h = map.smr_handle();
    h.flush();
    map.domain().stats().unreclaimed()
}

macro_rules! transparency_test {
    ($name:ident, $scheme:ty) => {
        #[test]
        fn $name() {
            let unreclaimed = handle_churn::<$scheme>();
            assert_eq!(
                unreclaimed, 0,
                "dropped handles stranded retired nodes"
            );
        }
    };
}

transparency_test!(churn_hyaline, Hyaline<_>);
transparency_test!(churn_hyaline1, Hyaline1<_>);
transparency_test!(churn_hyaline_s, HyalineS<_>);
transparency_test!(churn_hyaline1_s, Hyaline1S<_>);
transparency_test!(churn_ebr, Ebr<_>);
transparency_test!(churn_hp, Hp<_>);
transparency_test!(churn_he, He<_>);
transparency_test!(churn_ibr, Ibr<_>);

/// Hyaline's slot registry must recycle: far more handle lifetimes than
/// `max_threads` capacity, as long as few are alive at once.
#[test]
fn slot_recycling_outlives_capacity() {
    let stack: TreiberStack<u64, Hyaline1<_>> = TreiberStack::with_config(SmrConfig {
        max_threads: 4,
        ..cfg()
    });
    for round in 0..1_000u64 {
        let mut h = stack.smr_handle();
        h.enter();
        stack.push(&mut h, round);
        stack.pop(&mut h);
        h.leave();
    }
    assert!(stack.domain().stats().balanced() || stack.domain().stats().unreclaimed() == 0);
}

/// Handles on the *same* Hyaline slot must coexist: more live handles than
/// slots (the "virtually unbounded number of threads" claim).
#[test]
fn more_threads_than_slots() {
    let map: MichaelHashMap<u64, u64, Hyaline<_>> = MichaelHashMap::with_config_and_buckets(
        SmrConfig {
            slots: 2, // far fewer slots than threads
            ..cfg()
        },
        64,
    );
    let map = &map;
    std::thread::scope(|s| {
        for t in 0..12u64 {
            s.spawn(move || {
                let mut h = map.smr_handle();
                for i in 0..500 {
                    let key = (t * 500 + i) % 128;
                    h.enter();
                    map.insert(&mut h, key, key);
                    h.leave();
                    h.enter();
                    map.remove(&mut h, &key);
                    h.leave();
                }
            });
        }
    });
    assert_eq!(map.domain().stats().unreclaimed(), 0);
}
