//! Contention-shift workload for Hyaline-S §4.3 adaptive slot resizing.
//!
//! The paper's Figure 6 directory grows when every slot is saturated by
//! stalled threads (un-acknowledged insertions past `ack_threshold`) and
//! the saturated slots become usable again once the stalled threads leave
//! and acknowledge their sublists. This test drives that full shift
//! deterministically:
//!
//! 1. **Build pressure**: nodes are allocated *before* two readers certify
//!    their slots' access eras, so retiring them later inserts batches into
//!    both slots (birth ≤ access era) while the readers stall inside their
//!    operations — `Ack` grows without bound.
//! 2. **Grow**: with every slot saturated, the next `enter` must double the
//!    directory and move to a fresh slot (the §4.3 transition).
//! 3. **Shift back**: the stalled readers leave, traversing and
//!    acknowledging their sublists; fresh handles can then settle on the
//!    original slots again — the effective slot set contracts.
//!
//! Throughout, payloads are `DropRegistry`-tracked: the resize transitions
//! must not leak, double-free, or strand a single node.

use hyaline::HyalineS;
use smr_core::{Atomic, Shared, Smr, SmrConfig, SmrHandle};
use smr_testkit::drop_tracker::{DropRegistry, Tracked};
use std::sync::atomic::Ordering;
use std::sync::Barrier;

const PREALLOC: u64 = 2_000;
const ACK_THRESHOLD: i64 = 64;

fn domain() -> HyalineS<Tracked<u64>> {
    HyalineS::with_config(SmrConfig {
        slots: 2,
        batch_min: 4,
        era_freq: 4,
        ack_threshold: ACK_THRESHOLD,
        adaptive: true,
        max_threads: 256,
        ..SmrConfig::default()
    })
}

#[test]
fn contention_shift_grows_then_recovers_with_exact_drop_balance() {
    let registry = DropRegistry::new();
    {
        let d = domain();
        assert_eq!(d.slot_count(), 2);

        // Handle-creation order pins the preferred slots: readers on 0 / 1.
        let r0 = d.handle();
        let r1 = d.handle();
        assert_eq!((r0.slot(), r1.slot()), (0, 1));
        let mut worker = d.handle();

        // Nodes born *before* the readers certify their access eras: their
        // batches will be inserted into the readers' slots.
        let nodes: Vec<Shared<Tracked<u64>>> = (0..PREALLOC)
            .map(|i| worker.alloc(registry.track(i)))
            .collect();
        let link0 = Atomic::new(worker.alloc(registry.track(u64::MAX)));
        let link1 = Atomic::new(worker.alloc(registry.track(u64::MAX - 1)));

        let ready = Barrier::new(3);
        let release = Barrier::new(3);
        std::thread::scope(|scope| {
            for (mut reader, link) in [(r0, &link0), (r1, &link1)] {
                let ready = &ready;
                let release = &release;
                scope.spawn(move || {
                    reader.enter();
                    // Certify the slot's access era at the current clock —
                    // every preallocated node's birth era is now covered.
                    let seen = reader.protect(0, link);
                    assert!(!seen.is_null());
                    ready.wait();
                    release.wait(); // stalled inside the operation
                    reader.leave(); // acknowledge the pinned sublist
                });
            }
            ready.wait();

            // Phase 1: retire everything while both readers stall. Each
            // finalized batch lands in both slots (access era ≥ births,
            // HRef ≥ 1) and bumps their unacknowledged `Ack` counters.
            worker.enter();
            for node in nodes {
                unsafe { worker.retire(node) };
            }
            worker.flush();
            worker.leave();

            // Phase 2: every slot is saturated, so this enter must grow the
            // directory (2 → ≥4) and settle on a freshly added slot.
            worker.enter();
            let grown = d.slot_count();
            assert!(grown >= 4, "directory did not grow: k = {grown}");
            assert!(grown.is_power_of_two(), "doubling growth violated: {grown}");
            assert!(
                worker.slot() >= 2,
                "worker stayed on a saturated slot ({})",
                worker.slot()
            );
            // Progress under the grown directory: churn keeps reclaiming.
            for i in 0..200u64 {
                let node = worker.alloc(registry.track(PREALLOC + i));
                unsafe { worker.retire(node) };
            }
            worker.leave();
            worker.flush();

            // Phase 3: release the stall; the readers' leaves acknowledge
            // their sublists, draining the Ack counters.
            release.wait();
        });

        // Recovery: the original slots are usable again — a handle whose
        // preferred slot is 0 must *stay* there (enter only moves away from
        // slots at or above the threshold).
        let recovered = (0..d.slot_count())
            .map(|_| d.handle())
            .find(|h| h.slot() == 0)
            .expect("round-robin assignment must hand out slot 0");
        let mut recovered = recovered;
        recovered.enter();
        assert_eq!(
            recovered.slot(),
            0,
            "slot 0 still saturated after the stalled readers left"
        );
        recovered.leave();

        // Retire the link nodes too, then tear down.
        let mut h = d.handle();
        h.enter();
        for link in [&link0, &link1] {
            let node = link.swap(Shared::null(), Ordering::AcqRel);
            unsafe { h.retire(node) };
        }
        h.leave();
        h.flush();
        drop(h);
        drop(recovered);
        drop(worker);

        let stats = d.stats();
        assert!(
            stats.balanced(),
            "resize transitions lost accounting: alloc {} free {} dealloc {}",
            stats.allocated(),
            stats.freed(),
            stats.deallocated()
        );
    }
    // Every tracked payload — preallocated, churned, links — dropped once.
    registry.assert_quiescent();
    assert_eq!(registry.created(), PREALLOC + 200 + 2);
}

/// The non-adaptive counterpart: the same contention shift must *not* grow
/// the directory (the capped Figure 10a configuration) and must still
/// reclaim everything once the stall clears.
#[test]
fn capped_variant_never_grows_under_the_same_shift() {
    let registry = DropRegistry::new();
    {
        let d = HyalineS::<Tracked<u64>>::with_config(SmrConfig {
            slots: 2,
            batch_min: 4,
            era_freq: 4,
            ack_threshold: ACK_THRESHOLD,
            adaptive: false,
            max_threads: 256,
            ..SmrConfig::default()
        });
        let mut r0 = d.handle();
        let mut worker = d.handle();
        let nodes: Vec<Shared<Tracked<u64>>> = (0..PREALLOC)
            .map(|i| worker.alloc(registry.track(i)))
            .collect();
        let link = Atomic::new(worker.alloc(registry.track(u64::MAX)));

        let ready = Barrier::new(2);
        let release = Barrier::new(2);
        std::thread::scope(|scope| {
            let ready = &ready;
            let release = &release;
            let link = &link;
            scope.spawn(move || {
                r0.enter();
                let _ = r0.protect(0, link);
                ready.wait();
                release.wait();
                r0.leave();
            });
            ready.wait();
            worker.enter();
            for node in nodes {
                unsafe { worker.retire(node) };
            }
            worker.flush();
            worker.leave();
            // Saturated but capped: enter settles for the least-saturated
            // slot and the directory stays at its configured size.
            worker.enter();
            assert_eq!(d.slot_count(), 2, "capped directory must not grow");
            worker.leave();
            release.wait();
        });
        let mut h = d.handle();
        h.enter();
        let node = link.swap(Shared::null(), Ordering::AcqRel);
        unsafe { h.retire(node) };
        h.leave();
        h.flush();
        drop(h);
        drop(worker);
        assert!(d.stats().balanced());
    }
    registry.assert_quiescent();
}
