//! Oversubscription through `HandlePool`: more live tasks than
//! `SmrConfig::max_threads` on registry-based schemes must park-and-reuse
//! handles instead of panicking, with exact drop balance.

use crystalline::{CrystallineL, CrystallineW};
use smr_baselines::{Ebr, Hp};
use smr_core::{HandlePool, Smr, SmrConfig, SmrHandle};
use smr_testkit::drop_tracker::{DropRegistry, Tracked};

const TASKS: usize = 16;
const ROUNDS: usize = 8;
const OPS_PER_ROUND: u64 = 32;

fn cfg(max_threads: usize) -> SmrConfig {
    SmrConfig {
        slots: 4,
        batch_min: 8,
        era_freq: 8,
        scan_threshold: 16,
        max_threads,
        ..SmrConfig::default()
    }
}

/// 16 tasks × 8 checkouts over a 4-handle registry: every task repeatedly
/// borrows a pooled handle, churns, and parks it again.
fn oversubscribed_churn<S: Smr<Tracked<u64>>>(max_threads: usize) -> DropRegistry {
    let registry = DropRegistry::new();
    {
        let domain = S::with_config(cfg(max_threads));
        let pool = HandlePool::new(&domain, max_threads);
        std::thread::scope(|scope| {
            for t in 0..TASKS {
                let registry = &registry;
                let pool = &pool;
                scope.spawn(move || {
                    for round in 0..ROUNDS {
                        let mut h = pool.checkout();
                        for i in 0..OPS_PER_ROUND {
                            h.enter();
                            let value = registry
                                .track((t * ROUNDS + round) as u64 * OPS_PER_ROUND + i);
                            let node = h.alloc(value);
                            unsafe { h.retire(node) };
                            h.leave();
                        }
                    } // guard drop flushes + parks
                });
            }
        });
        assert!(
            pool.issued() <= max_threads,
            "{}: pool created {} handles over a cap of {max_threads}",
            S::name(),
            pool.issued()
        );
        assert_eq!(pool.parked(), pool.issued(), "all handles parked at the end");
    }
    registry
}

#[test]
fn ebr_oversubscription_parks_and_reuses() {
    let registry = oversubscribed_churn::<Ebr<Tracked<u64>>>(4);
    registry.assert_quiescent();
    assert_eq!(
        registry.created(),
        (TASKS * ROUNDS) as u64 * OPS_PER_ROUND,
        "payload count mismatch"
    );
}

#[test]
fn hp_oversubscription_parks_and_reuses() {
    let registry = oversubscribed_churn::<Hp<Tracked<u64>>>(4);
    registry.assert_quiescent();
}

#[test]
fn crystalline_l_oversubscription_parks_and_reuses() {
    let registry = oversubscribed_churn::<CrystallineL<Tracked<u64>>>(4);
    registry.assert_quiescent();
    assert_eq!(
        registry.created(),
        (TASKS * ROUNDS) as u64 * OPS_PER_ROUND,
        "payload count mismatch"
    );
}

#[test]
fn crystalline_w_oversubscription_parks_and_reuses() {
    let registry = oversubscribed_churn::<CrystallineW<Tracked<u64>>>(4);
    registry.assert_quiescent();
    assert_eq!(
        registry.created(),
        (TASKS * ROUNDS) as u64 * OPS_PER_ROUND,
        "payload count mismatch"
    );
}

/// Crystalline handles carry scheme-local state across threads: with
/// `handoff_attempts: 0` every retire goes through the per-slot handoff
/// cell, so a handle may be holding adopted batches when it parks. Each
/// round runs two fresh OS threads over the same 2-handle pool, so the
/// same handle (and whatever it adopted) keeps moving to new threads.
/// Exact drop balance after the domain drops proves no adopted batch was
/// stranded or double-freed along the way.
#[test]
fn crystalline_handles_migrate_with_adopted_batches() {
    let registry = DropRegistry::new();
    {
        let domain: CrystallineL<Tracked<u64>> = Smr::with_config(SmrConfig {
            handoff_attempts: 0,
            ..cfg(2)
        });
        let pool = HandlePool::new(&domain, 2);
        for round in 0..ROUNDS {
            std::thread::scope(|scope| {
                for task in 0..2u64 {
                    let registry = &registry;
                    let pool = &pool;
                    scope.spawn(move || {
                        let mut h = pool.checkout();
                        for i in 0..OPS_PER_ROUND {
                            h.enter();
                            let value = registry
                                .track((round as u64 * 2 + task) * OPS_PER_ROUND + i);
                            let node = h.alloc(value);
                            unsafe { h.retire(node) };
                            h.leave();
                        }
                    }); // guard drop flushes + parks
                }
            });
        }
        assert!(pool.issued() <= 2, "pool overgrew its cap");
        assert_eq!(pool.parked(), pool.issued(), "all handles parked");
    }
    registry.assert_quiescent();
    assert_eq!(
        registry.created(),
        (ROUNDS as u64 * 2) * OPS_PER_ROUND,
        "payload count mismatch"
    );
}

/// The baseline behavior the pool exists to fix: creating handles directly
/// past `max_threads` panics in the slot registry.
#[test]
fn direct_handles_beyond_max_threads_panic() {
    let domain: Ebr<u64> = Ebr::with_config(cfg(4));
    let _live: Vec<_> = (0..4).map(|_| domain.handle()).collect();
    let overflow = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _fifth = domain.handle();
    }));
    assert!(overflow.is_err(), "fifth concurrent handle must panic");
}

/// A pooled handle checked out on one thread is reusable from another —
/// the property the `Send` bound on `Smr::Handle` guarantees.
#[test]
fn pooled_handles_migrate_between_threads() {
    let domain: Ebr<u64> = Ebr::with_config(cfg(1));
    let pool = HandlePool::new(&domain, 1);
    {
        let mut h = pool.checkout();
        h.enter();
        let node = h.alloc(1);
        unsafe { h.retire(node) };
        h.leave();
    }
    std::thread::scope(|scope| {
        let pool = &pool;
        scope.spawn(move || {
            // Same handle, different thread.
            let mut h = pool.checkout();
            h.enter();
            let node = h.alloc(2);
            unsafe { h.retire(node) };
            h.leave();
        });
    });
    assert_eq!(pool.issued(), 1);
    drop(pool);
    let stats = domain.stats();
    assert_eq!(stats.allocated(), 2);
}

#[test]
fn try_check_out_drains_and_refills() {
    let domain: Ebr<u64> = Ebr::with_config(cfg(2));
    let pool = HandlePool::new(&domain, 1);
    let held = pool.try_check_out().expect("first checkout");
    assert!(pool.try_check_out().is_none(), "capacity 1 is exhausted");
    assert_eq!(pool.checked_out(), 1);
    drop(held);
    assert!(pool.try_check_out().is_some(), "parked handle is reissued");
}
