//! Payload drop balance: every value handed to a structure is dropped
//! exactly once, across all schemes and structures.
//!
//! Values are [`smr_testkit::Tracked`] payloads tied to a [`DropRegistry`].
//! Node reclamation drops the payload inside the node; `get`/`remove` clones
//! mint fresh tracked instances, so after the map is torn down the registry
//! must be exactly quiescent: a missing drop is a leak, a second drop of the
//! same instance panics at the drop site.

use hyaline::{Hyaline, Hyaline1, Hyaline1S, HyalineS};
use lockfree_ds::{HarrisMichaelList, MichaelHashMap, MsQueue, TreiberStack};
use smr_baselines::{Ebr, He, Hp, Ibr, Leaky};
use smr_core::{Smr, SmrConfig, SmrHandle};
use smr_testkit::{DropRegistry, Tracked};

fn cfg() -> SmrConfig {
    SmrConfig {
        slots: 4,
        batch_min: 8,
        era_freq: 8,
        scan_threshold: 16,
        max_threads: 32,
        ..SmrConfig::default()
    }
}

fn churn_map<S: Smr<lockfree_ds::ListNode<u64, Tracked<u64>>>>() {
    let registry = DropRegistry::new();
    {
        let map: MichaelHashMap<u64, Tracked<u64>, S> =
            MichaelHashMap::with_config_and_buckets(cfg(), 8);
        let reg = &registry;
        let map = &map;
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    let mut h = map.smr_handle();
                    for i in 0..2_000u64 {
                        let key = (t * 7 + i) % 32;
                        h.enter();
                        match i % 3 {
                            0 => {
                                map.insert(&mut h, key, reg.track(key));
                            }
                            1 => {
                                if let Some(v) = map.get(&mut h, &key) {
                                    assert_eq!(*v, key, "value under wrong key");
                                }
                            }
                            _ => {
                                map.remove(&mut h, &key);
                            }
                        }
                        h.leave();
                    }
                    h.flush();
                });
            }
        });
    } // map dropped: every remaining node's payload must drop here
    registry.assert_quiescent();
}

fn churn_stack<S: Smr<lockfree_ds::StackNode<Tracked<u64>>>>() {
    let registry = DropRegistry::new();
    {
        let stack: TreiberStack<Tracked<u64>, S> = TreiberStack::with_config(cfg());
        let reg = &registry;
        let stack = &stack;
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    let mut h = stack.smr_handle();
                    for i in 0..2_000u64 {
                        h.enter();
                        if i % 2 == 0 {
                            stack.push(&mut h, reg.track(t * 10_000 + i));
                        } else {
                            stack.pop(&mut h);
                        }
                        h.leave();
                    }
                    h.flush();
                });
            }
        });
    }
    registry.assert_quiescent();
}

fn churn_queue<S: Smr<lockfree_ds::QueueNode<Tracked<u64>>>>() {
    let registry = DropRegistry::new();
    {
        let queue: MsQueue<Tracked<u64>, S> = MsQueue::with_config(cfg());
        let reg = &registry;
        let queue = &queue;
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    let mut h = queue.smr_handle();
                    for i in 0..2_000u64 {
                        h.enter();
                        if i % 2 == 0 {
                            queue.enqueue(&mut h, reg.track(t * 10_000 + i));
                        } else {
                            queue.dequeue(&mut h);
                        }
                        h.leave();
                    }
                    h.flush();
                });
            }
        });
    }
    registry.assert_quiescent();
}

fn churn_list<S: Smr<lockfree_ds::ListNode<u64, Tracked<u64>>>>() {
    let registry = DropRegistry::new();
    {
        let list: HarrisMichaelList<u64, Tracked<u64>, S> =
            HarrisMichaelList::with_config(cfg());
        let reg = &registry;
        let list = &list;
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    let mut h = list.smr_handle();
                    for i in 0..1_200u64 {
                        let key = (t * 3 + i) % 16;
                        h.enter();
                        if i % 2 == 0 {
                            list.insert(&mut h, key, reg.track(key));
                        } else {
                            list.remove(&mut h, &key);
                        }
                        h.leave();
                    }
                    h.flush();
                });
            }
        });
    }
    registry.assert_quiescent();
}

#[test]
fn map_drop_balance_hyaline() {
    churn_map::<Hyaline<_>>();
}

#[test]
fn map_drop_balance_hyaline1() {
    churn_map::<Hyaline1<_>>();
}

#[test]
fn map_drop_balance_hyaline_s() {
    churn_map::<HyalineS<_>>();
}

#[test]
fn map_drop_balance_hyaline_1s() {
    churn_map::<Hyaline1S<_>>();
}

#[test]
fn map_drop_balance_ebr() {
    churn_map::<Ebr<_>>();
}

#[test]
fn map_drop_balance_hp() {
    churn_map::<Hp<_>>();
}

#[test]
fn map_drop_balance_he() {
    churn_map::<He<_>>();
}

#[test]
fn map_drop_balance_ibr() {
    churn_map::<Ibr<_>>();
}

#[test]
fn stack_drop_balance_hyaline() {
    churn_stack::<Hyaline<_>>();
}

#[test]
fn stack_drop_balance_hyaline_1s() {
    churn_stack::<Hyaline1S<_>>();
}

#[test]
fn stack_drop_balance_hp() {
    churn_stack::<Hp<_>>();
}

#[test]
fn queue_drop_balance_hyaline1() {
    churn_queue::<Hyaline1<_>>();
}

#[test]
fn queue_drop_balance_hyaline_s() {
    churn_queue::<HyalineS<_>>();
}

#[test]
fn queue_drop_balance_ebr() {
    churn_queue::<Ebr<_>>();
}

#[test]
fn list_drop_balance_hyaline() {
    churn_list::<Hyaline<_>>();
}

#[test]
fn list_drop_balance_ibr() {
    churn_list::<Ibr<_>>();
}

/// Leaky never reclaims, so the registry must report exactly the leaked
/// payloads still live after teardown — the accounting itself is validated
/// against a scheme with known-leaking semantics.
#[test]
fn leaky_leaks_are_visible_to_the_registry() {
    let registry = DropRegistry::new();
    let removed;
    {
        let map: MichaelHashMap<u64, Tracked<u64>, Leaky<_>> =
            MichaelHashMap::with_config_and_buckets(cfg(), 4);
        let mut h = map.smr_handle();
        for key in 0..64u64 {
            h.enter();
            map.insert(&mut h, key, registry.track(key));
            h.leave();
        }
        let mut gone = 0;
        for key in 0..32u64 {
            h.enter();
            if map.remove(&mut h, &key).is_some() {
                gone += 1;
            }
            h.leave();
        }
        removed = gone;
        drop(h);
    }
    // The 32 removed nodes were retired but never freed (Leaky), and the 32
    // still-linked nodes are dropped by the map's Drop. The `remove` clones
    // handed back to us were dropped on the spot.
    assert_eq!(removed, 32);
    assert!(
        registry.live() >= removed,
        "Leaky must leak at least the removed nodes' payloads: live {} < {}",
        registry.live(),
        removed
    );
}
