//! Use-after-free detection through value provenance.
//!
//! Every value stored in a map is a sealed token minted for its key
//! ([`smr_testkit::TokenMint`]). A read that returns bytes from freed or
//! reused memory surfaces as a token that fails validation (bad seal) or was
//! minted for a different key. Running the full scheme × structure matrix
//! under write-heavy concurrent churn makes reclamation races observable as
//! immediate assertion failures instead of silent corruption.

use hyaline::{Hyaline, Hyaline1, Hyaline1S, HyalineS};
use lockfree_ds::{
    BonsaiTree, ConcurrentMap, HarrisMichaelList, MichaelHashMap, NatarajanMittalTree,
};
use smr_baselines::{Ebr, He, Hp, Ibr};
use smr_core::{Smr, SmrConfig, SmrHandle};
use smr_testkit::TokenMint;

const KEY_RANGE: u64 = 64;
const OPS_PER_THREAD: u64 = 3_000;
const THREADS: u64 = 4;

fn cfg() -> SmrConfig {
    SmrConfig {
        slots: 2,
        batch_min: 4,
        era_freq: 8,
        scan_threshold: 16,
        max_threads: 32,
        ack_threshold: 128,
        ..SmrConfig::default()
    }
}

fn churn_with_tokens<S, M>()
where
    M: ConcurrentMap<S>,
    S: Smr<M::Node>,
{
    let mint = &TokenMint::new();
    let map = &M::with_config(cfg());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                let mut h = map.handle();
                let mut x = t.wrapping_mul(0x9E37_79B9).wrapping_add(1);
                for _ in 0..OPS_PER_THREAD {
                    // xorshift: cheap, deterministic per thread.
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = x % KEY_RANGE;
                    h.enter();
                    match x % 4 {
                        0 | 1 => {
                            if let Some(token) = map.map_get(&mut h, key) {
                                mint.validate(key, token).unwrap_or_else(|e| {
                                    panic!("{}: get({key}) returned corrupt value: {e}", M::NAME)
                                });
                            }
                        }
                        2 => {
                            map.map_insert(&mut h, key, mint.mint(key));
                        }
                        _ => {
                            if let Some(token) = map.map_remove(&mut h, key) {
                                mint.validate(key, token).unwrap_or_else(|e| {
                                    panic!("{}: remove({key}) returned corrupt value: {e}", M::NAME)
                                });
                            }
                        }
                    }
                    h.leave();
                }
                h.flush();
            });
        }
    });
    // Drain: every surviving value must still validate.
    let mut h = map.handle();
    for key in 0..KEY_RANGE {
        h.enter();
        if let Some(token) = map.map_remove(&mut h, key) {
            mint.validate(key, token)
                .unwrap_or_else(|e| panic!("{}: drain({key}) corrupt: {e}", M::NAME));
        }
        h.leave();
    }
    drop(h);
}

macro_rules! token_matrix {
    ($($name:ident: $scheme:ty => $map:ty;)*) => {
        $(
            #[test]
            fn $name() {
                churn_with_tokens::<$scheme, $map>();
            }
        )*
    };
}

token_matrix! {
    tokens_list_hyaline: Hyaline<_> => HarrisMichaelList<u64, u64, _>;
    tokens_list_hyaline1: Hyaline1<_> => HarrisMichaelList<u64, u64, _>;
    tokens_list_hp: Hp<_> => HarrisMichaelList<u64, u64, _>;
    tokens_hashmap_hyaline: Hyaline<_> => MichaelHashMap<u64, u64, _>;
    tokens_hashmap_hyaline_s: HyalineS<_> => MichaelHashMap<u64, u64, _>;
    tokens_hashmap_hyaline_1s: Hyaline1S<_> => MichaelHashMap<u64, u64, _>;
    tokens_hashmap_ebr: Ebr<_> => MichaelHashMap<u64, u64, _>;
    tokens_hashmap_ibr: Ibr<_> => MichaelHashMap<u64, u64, _>;
    tokens_hashmap_he: He<_> => MichaelHashMap<u64, u64, _>;
    tokens_nmtree_hyaline1: Hyaline1<_> => NatarajanMittalTree<u64, u64, _>;
    tokens_nmtree_hyaline_s: HyalineS<_> => NatarajanMittalTree<u64, u64, _>;
    tokens_nmtree_hp: Hp<_> => NatarajanMittalTree<u64, u64, _>;
    tokens_bonsai_hyaline: Hyaline<_> => BonsaiTree<u64, u64, _>;
    tokens_bonsai_hyaline1: Hyaline1<_> => BonsaiTree<u64, u64, _>;
    tokens_bonsai_hyaline_1s: Hyaline1S<_> => BonsaiTree<u64, u64, _>;
    tokens_bonsai_ibr: Ibr<_> => BonsaiTree<u64, u64, _>;
}
