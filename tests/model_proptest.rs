//! Property tests: every structure, driven by a random operation sequence,
//! must behave exactly like `BTreeMap` (single-threaded linearizability
//! baseline), for a representative scheme of each protection style.

use hyaline::{Hyaline, HyalineS};
use lockfree_ds::{BonsaiTree, HarrisMichaelList, MichaelHashMap, NatarajanMittalTree};
use proptest::prelude::*;
use smr_baselines::{Ebr, Hp, Ibr};
use smr_core::{SmrConfig, SmrHandle};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum MapOp {
    Get(u64),
    Insert(u64, u64),
    Remove(u64),
}

fn op_strategy() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (0u64..32).prop_map(MapOp::Get),
        (0u64..32, any::<u64>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
        (0u64..32).prop_map(MapOp::Remove),
    ]
}

fn cfg() -> SmrConfig {
    SmrConfig {
        slots: 2,
        batch_min: 4,
        era_freq: 4,
        scan_threshold: 8,
        max_protect: 8,
        max_threads: 8,
        ..SmrConfig::default()
    }
}

macro_rules! model_check {
    ($ops:expr, $map:expr) => {{
        let map = $map;
        let mut model = BTreeMap::new();
        let mut h = map.smr_handle();
        for op in $ops.iter() {
            h.enter();
            match op {
                MapOp::Get(k) => {
                    assert_eq!(map.get(&mut h, k), model.get(k).copied(), "get({k})");
                }
                MapOp::Insert(k, v) => {
                    let model_new = !model.contains_key(k);
                    assert_eq!(map.insert(&mut h, *k, *v), model_new, "insert({k})");
                    model.entry(*k).or_insert(*v);
                }
                MapOp::Remove(k) => {
                    assert_eq!(map.remove(&mut h, k), model.remove(k), "remove({k})");
                }
            }
            h.leave();
        }
        // Final sweep: agreement on the whole key space.
        for k in 0..32u64 {
            h.enter();
            assert_eq!(map.get(&mut h, &k), model.get(&k).copied(), "final get({k})");
            h.leave();
        }
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn list_matches_model_hyaline(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let map: HarrisMichaelList<u64, u64, Hyaline<_>> = HarrisMichaelList::with_config(cfg());
        model_check!(ops, &map);
    }

    #[test]
    fn list_matches_model_hp(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let map: HarrisMichaelList<u64, u64, Hp<_>> = HarrisMichaelList::with_config(cfg());
        model_check!(ops, &map);
    }

    #[test]
    fn hashmap_matches_model_hyaline_s(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let map: MichaelHashMap<u64, u64, HyalineS<_>> =
            MichaelHashMap::with_config_and_buckets(cfg(), 8);
        model_check!(ops, &map);
    }

    #[test]
    fn hashmap_matches_model_ebr(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let map: MichaelHashMap<u64, u64, Ebr<_>> =
            MichaelHashMap::with_config_and_buckets(cfg(), 8);
        model_check!(ops, &map);
    }

    #[test]
    fn nmtree_matches_model_hyaline(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let map: NatarajanMittalTree<u64, u64, Hyaline<_>> =
            NatarajanMittalTree::with_config(cfg());
        model_check!(ops, &map);
    }

    #[test]
    fn nmtree_matches_model_hp(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let map: NatarajanMittalTree<u64, u64, Hp<_>> = NatarajanMittalTree::with_config(cfg());
        model_check!(ops, &map);
    }

    #[test]
    fn bonsai_matches_model_ibr(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let map: BonsaiTree<u64, u64, Ibr<_>> = BonsaiTree::with_config(cfg());
        model_check!(ops, &map);
    }

    #[test]
    fn bonsai_matches_model_hyaline_s(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let map: BonsaiTree<u64, u64, HyalineS<_>> = BonsaiTree::with_config(cfg());
        model_check!(ops, &map);
    }
}
