//! Node-recycling pool semantics through the public scheme API.
//!
//! Four guarantees the recycle layer must uphold regardless of scheme:
//!
//! 1. **Capacity overflow falls back to the real allocator.** A pool sized
//!    far below the churn volume must evict to `dealloc` without leaking or
//!    double-dropping payloads.
//! 2. **Cross-thread recycling balances exactly.** Nodes allocated on one
//!    thread, retired by another, and reissued from the reclaimer's
//!    magazine still drop every payload exactly once.
//! 3. **Layout mismatches fall through.** A pool keyed to one node layout
//!    must hand other layouts straight to the global allocator — no pooled
//!    memory of the wrong size is ever reissued.
//! 4. **Domain drop drains pools with zero leaks.** Allocations resident in
//!    magazines and partitions when the domain dies are returned to the
//!    allocator; their payloads were already dropped at dispose time.
//!
//! Payload-level balance is asserted with [`DropRegistry`]-tracked values
//! (a leak shows as a missing drop, a stale reissue as a double drop at the
//! drop site); node-level balance with [`smr_core::SmrStats::balanced`],
//! which recycling must not disturb — pooled residency is a property of the
//! *memory*, not of the logical alloc/free ledger.

use smr_core::{Atomic, Magazine, NodePool, Shared, Smr, SmrConfig, SmrHandle, SmrStats};
use smr_testkit::{DropRegistry, Tracked};
use std::sync::atomic::Ordering;

const THREADS: u64 = 4;
const OPS_PER_THREAD: u64 = 2_000;

fn base_cfg() -> SmrConfig {
    SmrConfig {
        slots: 4,
        batch_min: 8,
        era_freq: 16,
        scan_threshold: 16,
        max_threads: 32,
        ..SmrConfig::default()
    }
}

/// Shared-slot churn: every thread alternates private alloc/retire with
/// publishing into a common slot, so nodes routinely migrate between
/// threads before they are retired and recycled. Returns
/// `(pool_hits, recycled)` sampled after all handles have flushed but
/// before the domain drops, plus the registry for payload assertions.
fn churn<S: Smr<Tracked<u64>>>(config: SmrConfig, registry: &DropRegistry) -> (u64, u64) {
    let domain = S::with_config(config);
    let slot: Atomic<Tracked<u64>> = Atomic::null();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let domain = &domain;
            let slot = &slot;
            scope.spawn(move || {
                let mut h = domain.handle();
                for i in 0..OPS_PER_THREAD {
                    h.enter();
                    let node = h.alloc(registry.track(t * OPS_PER_THREAD + i));
                    if i % 2 == 0 {
                        let prev = slot.swap(node, Ordering::AcqRel);
                        if !prev.is_null() {
                            // SAFETY: `swap` made `prev` unreachable and
                            // this thread is its only extractor.
                            unsafe { h.retire(prev) };
                        }
                    } else {
                        // SAFETY: never published; no other reference.
                        unsafe { h.retire(node) };
                    }
                    h.leave();
                }
                h.flush();
            });
        }
    });
    let mut h = domain.handle();
    h.enter();
    let last = slot.swap(Shared::null(), Ordering::AcqRel);
    if !last.is_null() {
        // SAFETY: the slot is private now; `last` has no other owner.
        unsafe { h.retire(last) };
    }
    h.leave();
    h.flush();
    drop(h);
    let stats = domain.stats();
    assert!(
        stats.balanced(),
        "{}: recycling disturbed the logical ledger (allocated {} != freed {} + deallocated {})",
        S::name(),
        stats.allocated(),
        stats.freed(),
        stats.deallocated()
    );
    (stats.pool_hits(), stats.recycled())
    // Domain drop drains magazines and partitions back to the allocator.
}

/// Scenario 1: the pool is sized at a small fraction of the churn volume,
/// so most disposals overflow the partitions and must take the real-dealloc
/// fallback. Payload balance must survive the constant evictions.
#[test]
fn capacity_overflow_falls_back_to_real_dealloc() {
    let registry = DropRegistry::new();
    let (_, recycled) = churn::<smr_baselines::Ebr<Tracked<u64>>>(
        SmrConfig {
            recycle: true,
            recycle_capacity: 8,
            recycle_magazine: 2,
            ..base_cfg()
        },
        &registry,
    );
    // The reclaim path routed through the pool far beyond its capacity, so
    // overflow evictions (real deallocs of recycled nodes) definitely ran.
    assert!(
        recycled > 8 * 2,
        "churn never overflowed the pool (recycled = {recycled})"
    );
    registry.assert_quiescent();
    assert_eq!(registry.created(), THREADS * OPS_PER_THREAD);
}

/// Scenario 2: with a comfortably sized pool, allocations are served from
/// memory that other threads released — and every payload still drops
/// exactly once. Run for Hyaline (batched, deferred free) and EBR (eager
/// scan free) since their reclaim paths reach `dispose` very differently.
#[test]
fn cross_thread_recycle_balances_hyaline() {
    let registry = DropRegistry::new();
    let (hits, recycled) =
        churn::<hyaline::Hyaline<Tracked<u64>>>(recycling(base_cfg()), &registry);
    assert!(hits > 0, "pool never served an allocation");
    assert!(recycled > 0, "reclaim path never reached the pool");
    registry.assert_quiescent();
    assert_eq!(registry.created(), THREADS * OPS_PER_THREAD);
}

#[test]
fn cross_thread_recycle_balances_crystalline_l() {
    let registry = DropRegistry::new();
    let (hits, recycled) =
        churn::<crystalline::CrystallineL<Tracked<u64>>>(recycling(base_cfg()), &registry);
    assert!(hits > 0, "pool never served an allocation");
    assert!(recycled > 0, "reclaim path never reached the pool");
    registry.assert_quiescent();
    assert_eq!(registry.created(), THREADS * OPS_PER_THREAD);
}

fn recycling(base: SmrConfig) -> SmrConfig {
    SmrConfig {
        recycle: true,
        recycle_capacity: 4096,
        recycle_magazine: 32,
        ..base
    }
}

/// Scenario 3: a pool keyed to one node layout must pass other layouts
/// straight through to the global allocator, while same-layout traffic
/// keeps cycling through the pool. Exercised on [`NodePool`] directly —
/// inside a scheme the pool is keyed to the domain's own node type, so the
/// fall-through arm is reachable only through this API.
#[test]
fn layout_mismatch_falls_through_to_plain_alloc() {
    let registry = DropRegistry::new();
    let stats = SmrStats::new();
    let config = recycling(SmrConfig::default());
    let pool = NodePool::for_node::<u64>(&config);
    assert!(pool.enabled());
    let mut mag: Magazine = pool.magazine();

    // Same-layout round trip: the second alloc reuses the first node's
    // memory (dispose parked it in this magazine, alloc pops it back).
    let first = pool.alloc::<u64>(&mut mag, &stats, 7);
    let first_addr = first.as_ptr() as usize;
    // SAFETY: `first` is unpublished and exclusively owned; payload live.
    unsafe { pool.dispose(&mut mag, &stats, first.as_ptr(), true) };
    let second = pool.alloc::<u64>(&mut mag, &stats, 8);
    assert_eq!(
        second.as_ptr() as usize,
        first_addr,
        "same-layout alloc did not reuse the pooled node"
    );
    // SAFETY: as above.
    unsafe { pool.dispose(&mut mag, &stats, second.as_ptr(), true) };

    // Mismatched layout: a wider payload must bypass the pool entirely —
    // its dispose drops the tracked payload and frees for real, touching
    // none of the pool counters.
    let wide = pool.alloc::<(Tracked<u64>, [u64; 8])>(&mut mag, &stats, (registry.track(1), [0; 8]));
    // SAFETY: `wide` is unpublished and exclusively owned; payload live.
    unsafe { pool.dispose(&mut mag, &stats, wide.as_ptr(), true) };
    registry.assert_quiescent();

    pool.flush(&mut mag, &stats);
    assert_eq!(stats.pool_hits(), 1, "only the same-layout realloc may hit");
    assert_eq!(stats.pool_misses(), 1, "only the first cold alloc may miss");
    assert_eq!(stats.recycled(), 2, "mismatched dispose must not be pooled");
    // Pool drop returns the parked allocation to the global allocator.
}

/// Scenario 4: tear the domain down while the pool is still full of parked
/// allocations. The domain's drop must hand every one of them back to the
/// allocator, and since dispose already dropped the payloads, the registry
/// balance is exact — nothing drops twice during the drain.
#[test]
fn domain_drop_drains_pools_without_leaks() {
    let registry = DropRegistry::new();
    let (hits, recycled) =
        churn::<hyaline::Hyaline<Tracked<u64>>>(recycling(base_cfg()), &registry);
    // The pool was comfortably sized, so allocations were genuinely parked
    // (and reissued) rather than evicted straight back to the allocator.
    assert!(hits > 0 && recycled > 0, "pool saw no traffic to drain");
    // `churn` dropped the domain on exit; the drain already happened.
    registry.assert_quiescent();
    assert_eq!(registry.created(), THREADS * OPS_PER_THREAD);
}
