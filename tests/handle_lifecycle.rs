//! Handle lifecycle edge cases, across every scheme.
//!
//! The `SmrHandle` contract promises safety through unusual — but legal —
//! lifecycles: a handle dropped *inside* an operation must implicitly
//! leave; `flush` may be called mid-operation; domains are independent
//! (handles of one never affect another); and registry-based schemes
//! refuse (by panicking) to over-commit their fixed capacity rather than
//! silently corrupting state.

use hyaline::{Hyaline, Hyaline1, Hyaline1S, HyalineS};
use smr_baselines::{Ebr, He, Hp, Ibr, Leaky, Lfrc};
use smr_core::{Smr, SmrConfig, SmrHandle};
use smr_testkit::Canary;

fn cfg() -> SmrConfig {
    SmrConfig {
        slots: 2,
        batch_min: 4,
        era_freq: 4,
        scan_threshold: 8,
        max_threads: 8,
        ..SmrConfig::default()
    }
}

/// Dropping a handle that is still inside an operation must release its
/// reservation and everything it retired (the implicit `leave` in `Drop`).
fn drop_while_active<S: Smr<Canary>>() {
    let domain = S::with_config(cfg());
    {
        let mut h = domain.handle();
        h.enter();
        for i in 0..16 {
            let node = h.alloc(Canary::new(i));
            unsafe { h.retire(node) };
        }
        // No leave, no flush: the handle drops mid-operation.
    }
    // A sweeper adopts any orphaned limbo and finishes reclamation.
    let mut sweeper = domain.handle();
    sweeper.flush();
    drop(sweeper);
    assert_eq!(
        domain.stats().unreclaimed(),
        0,
        "{}: nodes stranded by a mid-operation drop",
        S::name()
    );
}

/// `flush` inside an operation is legal: it finalizes buffered retirement
/// state without ending the reservation, and the operation continues.
fn flush_mid_operation<S: Smr<Canary>>() {
    let domain = S::with_config(cfg());
    let mut h = domain.handle();
    h.enter();
    let keep = h.alloc(Canary::new(99));
    for i in 0..8 {
        let node = h.alloc(Canary::new(i));
        unsafe { h.retire(node) };
    }
    h.flush();
    // Still inside: the kept node must be intact and usable.
    unsafe { keep.deref() }.check().expect("pre-leave canary");
    unsafe { h.retire(keep) };
    h.leave();
    h.flush();
    drop(h);
    let mut sweeper = domain.handle();
    sweeper.flush();
    drop(sweeper);
    assert_eq!(domain.stats().unreclaimed(), 0, "{}", S::name());
}

/// Two domains of the same scheme are fully independent: retiring through
/// one never reclaims (or counts) nodes of the other.
fn domains_are_independent<S: Smr<Canary>>() {
    let a = S::with_config(cfg());
    let b = S::with_config(cfg());
    let mut ha = a.handle();
    let mut hb = b.handle();
    ha.enter();
    hb.enter();
    let node_b = hb.alloc(Canary::new(7));
    for i in 0..32 {
        let n = ha.alloc(Canary::new(i));
        unsafe { ha.retire(n) };
    }
    ha.leave();
    ha.flush();
    // Domain B saw no retires; its node is untouched and unaccounted in A.
    unsafe { node_b.deref() }.check().expect("foreign-domain canary");
    assert_eq!(b.stats().retired(), 0, "{}: cross-domain retire", S::name());
    unsafe { hb.retire(node_b) };
    hb.leave();
    hb.flush();
    drop(ha);
    drop(hb);
    assert!(a.stats().balanced(), "{}: domain A leaked", S::name());
    assert!(b.stats().balanced(), "{}: domain B leaked", S::name());
}

macro_rules! lifecycle_tests {
    ($($name:ident => $scheme:ty),+ $(,)?) => {
        mod drop_active {
            use super::*;
            $(#[test]
            fn $name() {
                drop_while_active::<$scheme>();
            })+
        }
        mod flush_inside {
            use super::*;
            $(#[test]
            fn $name() {
                flush_mid_operation::<$scheme>();
            })+
        }
        mod independence {
            use super::*;
            $(#[test]
            fn $name() {
                domains_are_independent::<$scheme>();
            })+
        }
    };
}

lifecycle_tests! {
    hyaline => Hyaline<Canary>,
    hyaline1 => Hyaline1<Canary>,
    hyaline_s => HyalineS<Canary>,
    hyaline_1s => Hyaline1S<Canary>,
    epoch => Ebr<Canary>,
    hp => Hp<Canary>,
    he => He<Canary>,
    ibr => Ibr<Canary>,
    lfrc => Lfrc<Canary>,
}

/// Leaky never reclaims, so only the lifecycle mechanics are checked.
#[test]
fn leaky_drop_while_active_is_harmless() {
    let domain: Leaky<Canary> = Leaky::with_config(cfg());
    {
        let mut h = domain.handle();
        h.enter();
        let n = h.alloc(Canary::new(1));
        unsafe { h.retire(n) };
    }
    assert_eq!(domain.stats().retired(), 1);
    assert_eq!(domain.stats().freed(), 0, "leaky must not reclaim");
}

/// Registry-based schemes must refuse to over-commit their capacity.
#[test]
fn registry_exhaustion_panics_rather_than_corrupting() {
    let domain: Hp<Canary> = Hp::with_config(SmrConfig {
        max_threads: 2,
        ..cfg()
    });
    let _h1 = domain.handle();
    let _h2 = domain.handle();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _h3 = domain.handle();
    }));
    assert!(result.is_err(), "third handle must be refused");
    // Releasing one slot makes the capacity available again.
    drop(_h1);
    let _h3 = domain.handle();
}

/// Transparent Hyaline supports unbounded handles on fixed slots — the
/// exact situation that panics for registry-based schemes.
#[test]
fn hyaline_handles_exceed_slot_count_freely() {
    let domain: Hyaline<Canary> = Hyaline::with_config(SmrConfig {
        slots: 2,
        ..cfg()
    });
    let mut handles: Vec<_> = (0..16).map(|_| domain.handle()).collect();
    for (i, h) in handles.iter_mut().enumerate() {
        h.enter();
        let n = h.alloc(Canary::new(i as u64));
        unsafe { h.retire(n) };
        h.leave();
    }
    drop(handles);
    assert!(domain.stats().balanced());
}
