//! The robustness property (paper §2.3, Theorem 4), asserted both ways:
//! robust schemes bound what a stalled thread pins; non-robust schemes
//! demonstrably do not.

use hyaline::{Hyaline, Hyaline1, Hyaline1S, HyalineS};
use lockfree_ds::{ConcurrentMap, MichaelHashMap};
use smr_baselines::{Ebr, He, Hp, Ibr};
use smr_core::{Smr, SmrConfig, SmrHandle};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

const CHURN: u64 = 30_000;

fn cfg() -> SmrConfig {
    SmrConfig {
        slots: 4,
        batch_min: 8,
        era_freq: 16,
        scan_threshold: 32,
        ack_threshold: 128,
        max_threads: 64,
        ..SmrConfig::default()
    }
}

/// Runs a churn worker beside a thread that stalls inside an operation
/// (after touching the structure); returns the unreclaimed count when the
/// worker finishes, while the thread is still stalled.
fn pinned_by_stall<S>(config: SmrConfig) -> u64
where
    S: Smr<lockfree_ds::ListNode<u64, u64>>,
{
    let map: MichaelHashMap<u64, u64, S> = MichaelHashMap::with_config_and_buckets(config, 256);
    let map = &map;
    let ready = &Barrier::new(2);
    let done = &AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut h = map.smr_handle();
            h.enter();
            for k in 0..4 {
                map.map_get(&mut h, k);
            }
            ready.wait();
            while !done.load(Ordering::Acquire) {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            h.leave();
        });
        ready.wait();
        let mut h = map.smr_handle();
        for i in 0..CHURN {
            let key = i % 512;
            h.enter();
            map.map_insert(&mut h, key, i);
            h.leave();
            h.enter();
            map.map_remove(&mut h, key);
            h.leave();
        }
        h.flush();
        let pinned = map.stats().unreclaimed();
        done.store(true, Ordering::Release);
        pinned
    })
}

#[test]
fn robust_schemes_bound_stalled_pinning() {
    // Generous bound: a robust scheme may hold a backlog proportional to
    // thresholds and batch sizes, but nowhere near the full churn volume.
    let bound = CHURN / 10;
    let hp = pinned_by_stall::<Hp<_>>(cfg());
    assert!(hp < bound, "HP pinned {hp}");
    let he = pinned_by_stall::<He<_>>(cfg());
    assert!(he < bound, "HE pinned {he}");
    let ibr = pinned_by_stall::<Ibr<_>>(cfg());
    assert!(ibr < bound, "IBR pinned {ibr}");
    let h1s = pinned_by_stall::<Hyaline1S<_>>(cfg());
    assert!(h1s < bound, "Hyaline-1S pinned {h1s}");
    let hs = pinned_by_stall::<HyalineS<_>>(cfg());
    assert!(hs < bound, "Hyaline-S pinned {hs}");
    let hs_adaptive = pinned_by_stall::<HyalineS<_>>(SmrConfig {
        adaptive: true,
        ..cfg()
    });
    assert!(hs_adaptive < bound, "adaptive Hyaline-S pinned {hs_adaptive}");
}

#[test]
fn non_robust_schemes_pin_unboundedly() {
    // The counterpart assertion: EBR and basic Hyaline keep almost all of
    // the churn pinned while a thread stalls (this is by design — the
    // paper's Table 1 marks them non-robust).
    let ebr = pinned_by_stall::<Ebr<_>>(cfg());
    assert!(ebr > CHURN / 2, "EBR unexpectedly reclaimed: pinned {ebr}");
    let hyaline = pinned_by_stall::<Hyaline<_>>(cfg());
    assert!(
        hyaline > CHURN / 4,
        "Hyaline unexpectedly robust: pinned {hyaline}"
    );
    let hyaline1 = pinned_by_stall::<Hyaline1<_>>(cfg());
    assert!(
        hyaline1 > CHURN / 4,
        "Hyaline-1 unexpectedly robust: pinned {hyaline1}"
    );
}

/// Theorem 4's flavor of bound: under Hyaline-S, the number of unreclaimable
/// nodes stays flat as churn grows (it depends on the era lag, not on how
/// much the workers allocate afterwards).
#[test]
fn hyaline_s_pinning_does_not_scale_with_churn() {
    let small = {
        let map: MichaelHashMap<u64, u64, HyalineS<_>> =
            MichaelHashMap::with_config_and_buckets(cfg(), 256);
        churn_with_stall(&map, CHURN / 8)
    };
    let large = {
        let map: MichaelHashMap<u64, u64, HyalineS<_>> =
            MichaelHashMap::with_config_and_buckets(cfg(), 256);
        churn_with_stall(&map, CHURN)
    };
    // Allow slack for timing noise; the point is it must not grow ~8x.
    assert!(
        large < small.max(64) * 4,
        "Hyaline-S pinning grew with churn: {small} -> {large}"
    );
}

fn churn_with_stall<S>(map: &MichaelHashMap<u64, u64, S>, churn: u64) -> u64
where
    S: Smr<lockfree_ds::ListNode<u64, u64>>,
{
    let ready = &Barrier::new(2);
    let done = &AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut h = map.smr_handle();
            h.enter();
            for k in 0..4 {
                map.map_get(&mut h, k);
            }
            ready.wait();
            while !done.load(Ordering::Acquire) {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            h.leave();
        });
        ready.wait();
        let mut h = map.smr_handle();
        for i in 0..churn {
            let key = i % 512;
            h.enter();
            map.map_insert(&mut h, key, i);
            h.leave();
            h.enter();
            map.map_remove(&mut h, key);
            h.leave();
        }
        h.flush();
        let pinned = map.domain().stats().unreclaimed();
        done.store(true, Ordering::Release);
        pinned
    })
}
