//! Compile-and-run coverage for the exact macro surface the workspace uses.

use proptest::collection::vec;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    A,
    B,
}

fn pair() -> impl Strategy<Value = (usize, Vec<Op>)> {
    (
        0..4usize,
        vec(prop_oneof![2 => Just(Op::A), 1 => Just(Op::B)], 0..3),
    )
        .prop_map(|(a, b)| (a, b))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// Doc comments and attributes must be preserved.
    #[test]
    fn weighted_union_and_tuples(
        p in vec(pair(), 1..=3),
        seed in any::<u64>(),
        flag in any::<bool>(),
    ) {
        let _ = (seed, flag);
        prop_assert!(p.len() <= 3, "len = {}", p.len());
        for (a, ops) in p {
            prop_assert!(a < 4);
            prop_assert!(ops.len() < 3);
        }
    }

    #[test]
    fn fixed_len_vec(xs in vec(0usize..=2, 9), n in 1usize..200) {
        prop_assert_eq!(xs.len(), 9);
        prop_assert_ne!(n, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn with_cases_form(x in 0u64..=u64::MAX) {
        let _ = x;
    }
}

proptest! {
    #[test]
    fn default_config_form(x in 0u8..255) {
        prop_assert!(x < 255);
    }
}
