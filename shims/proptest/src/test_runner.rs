//! Test-runner plumbing: configuration, the per-case RNG, and failure
//! reporting.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for a `proptest!` block.
///
/// Only `cases` is honored by the shim; the other fields exist so that
/// struct-update syntax against `ProptestConfig::default()` compiles.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Ignored by the shim (no shrinking).
    pub max_shrink_iters: u32,
    /// Ignored by the shim (no global rejection accounting).
    pub max_global_rejects: u32,
    /// Ignored by the shim (no local rejection accounting).
    pub max_local_rejects: u32,
    /// Ignored by the shim (no fork support).
    pub fork: bool,
    /// Ignored by the shim (no per-case timeout).
    pub timeout: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 65_536,
            max_local_rejects: 65_536,
            fork: false,
            timeout: 0,
        }
    }
}

impl ProptestConfig {
    /// A default configuration overriding only the case count.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Deterministic per-case random source handed to strategies.
#[derive(Debug)]
pub struct TestRng {
    rng: SmallRng,
}

impl TestRng {
    /// Builds the RNG for one `(test, case)` pair.
    ///
    /// Deterministic by default so failures reproduce; set `PROPTEST_SEED`
    /// to explore a different portion of the input space.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let base: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x4879_616C_696E_6521); // "Hyaline!"
        let mut h = base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3); // FNV-1a step
        }
        Self {
            rng: SmallRng::seed_from_u64(h),
        }
    }

    /// Access to the underlying generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// Prints the generated inputs of a failing case while its panic unwinds.
#[derive(Debug)]
pub struct FailureReporter {
    description: Option<String>,
}

impl FailureReporter {
    /// Arms the reporter with the description of the current case.
    pub fn new(description: String) -> Self {
        Self {
            description: Some(description),
        }
    }

    /// Disarms the reporter; call after the case body succeeds.
    pub fn disarm(mut self) {
        self.description = None;
    }
}

impl Drop for FailureReporter {
    fn drop(&mut self) {
        if let Some(desc) = &self.description {
            if std::thread::panicking() {
                eprintln!("proptest case failed: {desc}");
            }
        }
    }
}
