//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Provided surface:
//!
//! * [`strategy::Strategy`] with `prop_map`, plus [`strategy::Just`],
//!   integer range strategies, tuple strategies (arity 2–4) and weighted
//!   unions via [`prop_oneof!`].
//! * [`arbitrary::any`] for the primitive integer types and `bool`.
//! * [`collection::vec`](fn@collection::vec) accepting a fixed length,
//!   `a..b` or `a..=b`.
//! * The [`proptest!`] macro with optional `#![proptest_config(..)]`, and
//!   `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`.
//!
//! Differences from the real crate: no shrinking (a failing case reports the
//! generated inputs via the panic message but is not minimized), and no
//! persistence of failing seeds. Case generation is deterministic per test
//! unless `PROPTEST_SEED` is set in the environment.

#![warn(missing_docs)]

pub mod strategy;

pub mod arbitrary;

pub mod collection;

pub mod test_runner;

/// Prelude: everything a typical property test imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced re-exports (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a `proptest!` body.
///
/// The shim has no shrinking machinery, so this is a plain `assert!` — a
/// failure panics with the formatted message and the generated inputs that
/// the `proptest!` wrapper prints on unwind.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Builds a strategy choosing among several alternatives, optionally
/// weighted (`weight => strategy`). All alternatives must produce the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests.
///
/// Accepts an optional leading `#![proptest_config(expr)]`, then any number
/// of `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        stringify!($name),
                        case,
                    );
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                    // Report the generated inputs if the body panics.
                    let mut __case_desc =
                        format!("[{} case {}]", stringify!($name), case);
                    $(__case_desc.push_str(&format!(
                        " {} = {:?};", stringify!($arg), &$arg,
                    ));)+
                    let __guard = $crate::test_runner::FailureReporter::new(__case_desc);
                    { $body }
                    __guard.disarm();
                }
            }
        )*
    };
}
