//! `any::<T>()` for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng().gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen::<bool>()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy producing any value of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
