//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then uses it to pick a second strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `pred` (re-rolls up to 1000 times).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// Boxes a strategy (helper used by [`crate::prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row: {}", self.whence);
    }
}

/// Weighted choice among boxed strategies; built by [`crate::prop_oneof!`].
pub struct Union<V: Debug> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V: Debug> Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union").field("arms", &self.arms.len()).finish()
    }
}

impl<V: Debug> Union<V> {
    /// Builds a union from `(weight, strategy)` pairs.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Self { arms, total }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut roll = rng.rng().gen_range(0..self.total);
        for (w, s) in &self.arms {
            if roll < *w as u64 {
                return s.generate(rng);
            }
            roll -= *w as u64;
        }
        unreachable!("weighted roll exceeded total weight")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
);
