//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Supports `Criterion::default()` with the `sample_size`, `warm_up_time`,
//! `measurement_time` and `configure_from_args` builders, `bench_function`
//! with `Bencher::iter`, and the `criterion_group!`/`criterion_main!`
//! macros. Timing is a straightforward warm-up + timed-samples loop; output
//! is one line per benchmark with the median and min..max per-iteration
//! times. No plotting, statistics beyond the median, or baseline files.

#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a value (re-export of
/// `std::hint::black_box` for API compatibility).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark manager: configuration plus result reporting.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
    list_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            filter: None,
            list_only: false,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets how long to run the routine before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Applies command-line arguments (`cargo bench` passes `--bench`; a
    /// bare trailing string is treated as a name filter, as in criterion).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" | "--nocapture" => {}
                "--list" => self.list_only = true,
                "--sample-size" => {
                    if let Some(v) = args.next() {
                        if let Ok(n) = v.parse() {
                            self = self.sample_size(n);
                        }
                    }
                }
                other if other.starts_with('-') => {
                    // Unsupported flag: consume its value too when real
                    // criterion defines it as value-taking, so the value is
                    // not mistaken for a name filter (which would silently
                    // skip every benchmark).
                    const VALUE_FLAGS: &[&str] = &[
                        "--save-baseline",
                        "--baseline",
                        "--baseline-lenient",
                        "--load-baseline",
                        "--measurement-time",
                        "--warm-up-time",
                        "--profile-time",
                        "--output-format",
                        "--color",
                        "--colour",
                        "--significance-level",
                        "--noise-threshold",
                        "--confidence-level",
                        "--nresamples",
                        "--format",
                        "--logfile",
                    ];
                    if VALUE_FLAGS.contains(&other)
                        && args.peek().is_some_and(|v| !v.starts_with('-'))
                    {
                        args.next();
                    }
                    eprintln!("criterion shim: ignoring unsupported flag {other}");
                }
                other => {
                    self.filter = Some(other.to_string());
                }
            }
        }
        self
    }

    /// Runs (or lists/filters) one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(f) = &self.filter {
            if !name.contains(f.as_str()) {
                return self;
            }
        }
        if self.list_only {
            println!("{name}: bench");
            return self;
        }
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        routine(&mut b);
        b.report(name);
        self
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the routine
/// to measure.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `routine`, discarding its output via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also calibrates iterations-per-sample so each timed
        // sample runs long enough (>= ~50us) for the clock to resolve.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            std_black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up_time.as_nanos() as f64 / warm_iters.max(1) as f64;
        let iters_per_sample = ((50_000.0 / per_iter.max(0.1)) as u64).max(1);

        let budget = Instant::now();
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<40} (no samples: iter() never called)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{name:<40} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: either `criterion_group!(name, target, ...)`
/// or the long form with explicit `config = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
