//! Offline shim for the subset of `crossbeam-utils` this workspace uses.
//!
//! Only [`CachePadded`] is provided. The alignment matches the real crate's
//! choice for x86_64/aarch64 (128 bytes: two cache lines, to defeat adjacent
//! line prefetchers).

#![warn(missing_docs)]

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of two cache lines.
#[derive(Default, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

// SAFETY: padding and alignment add no shared state; `CachePadded<T>` is a
// transparent wrapper, so it is Send exactly when `T` is.
unsafe impl<T: Send> Send for CachePadded<T> {}
// SAFETY: as above — shared access is shared access to the inner `T`.
unsafe impl<T: Sync> Sync for CachePadded<T> {}

impl<T> CachePadded<T> {
    /// Pads and aligns a value to the length of two cache lines.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded")
            .field("value", &self.value)
            .finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_two_cache_lines() {
        assert_eq!(core::mem::align_of::<CachePadded<u8>>(), 128);
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert_eq!(p.into_inner(), 7);
    }
}
