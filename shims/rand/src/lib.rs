//! Offline shim for the subset of `rand` 0.8 this workspace uses:
//! [`rngs::SmallRng`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`) and [`SeedableRng::seed_from_u64`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `SmallRng` uses on 64-bit targets, so statistical
//! quality is comparable and sequences are deterministic per seed (though not
//! bit-identical to the real crate).

#![warn(missing_docs)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array in the real crate).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea, Flood 2014): full-period, passes BigCrush.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   u64 => next_u64, usize => next_u64,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   i64 => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = widening_mod(rng, span);
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                if span == 0 || span > u64::MAX as u128 + 1 {
                    // Full u128-width span cannot occur for <=64-bit types
                    // except the degenerate full-domain inclusive range.
                    return <$t as Standard>::sample(rng);
                }
                let v = widening_mod(rng, span);
                (start as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Unbiased-enough uniform draw in `[0, span)` via 128-bit widening multiply
/// (Lemire's method without the rejection loop; bias is < 2^-64).
fn widening_mod<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let x = rng.next_u64() as u128;
    (x * span) >> 64
}

/// User-facing extension trait, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna 2018).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&v[..n]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
        }
        // All values in a small range are eventually hit.
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
