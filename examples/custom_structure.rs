//! Integrating Hyaline into your own lock-free structure.
//!
//! Run with: `cargo run --release --example custom_structure`
//!
//! The paper's transparency claim (§2.4) is that Hyaline drops into
//! unmanaged-style code with a four-call API — `enter`, `protect`,
//! `retire`, `leave` — and no thread registration. This example builds a
//! lock-free *work-claiming set* from scratch on the public API: producers
//! publish jobs into a singly-linked list, consumers claim the whole list
//! with one swap and retire the nodes as they drain them. No part of
//! `lockfree_ds` is used; everything below is the code a downstream user
//! would write.

use hyaline::Hyaline;
use smr_core::{Atomic, Shared, Smr, SmrConfig, SmrHandle};
use std::sync::atomic::Ordering;

/// One published job.
struct Job {
    payload: u64,
    next: Atomic<Job>,
}

/// A multi-producer, single-claimer job list.
struct JobList {
    domain: Hyaline<Job>,
    head: Atomic<Job>,
}

impl JobList {
    fn new() -> Self {
        Self {
            domain: Hyaline::with_config(SmrConfig {
                slots: 4,
                batch_min: 16,
                ..SmrConfig::default()
            }),
            head: Atomic::null(),
        }
    }

    /// Publishes a job (lock-free push).
    fn publish(&self, h: &mut <Hyaline<Job> as Smr<Job>>::Handle<'_>, payload: u64) {
        h.enter();
        let node = h.alloc(Job {
            payload,
            next: Atomic::null(),
        });
        let node_ref = unsafe { node.deref() };
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            node_ref.next.store(head, Ordering::Relaxed);
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(now) => head = now,
            }
        }
        h.leave();
    }

    /// Claims every published job at once (one swap), retires the nodes,
    /// and returns the payload sum. Concurrent publishers are unaffected;
    /// concurrent claimers each get a disjoint batch.
    fn claim_all(&self, h: &mut <Hyaline<Job> as Smr<Job>>::Handle<'_>) -> (u64, u64) {
        h.enter();
        let mut cursor = self.head.swap(Shared::null(), Ordering::AcqRel);
        let mut sum = 0u64;
        let mut count = 0u64;
        while !cursor.is_null() {
            // The swap made this sublist unreachable to new operations, but
            // concurrent claimers that started earlier may still be reading
            // it — `retire`, never free directly.
            let job = unsafe { cursor.deref() };
            sum = sum.wrapping_add(job.payload);
            count += 1;
            let next = job.next.load(Ordering::Acquire);
            unsafe { h.retire(cursor) };
            cursor = next;
        }
        h.leave();
        (sum, count)
    }
}

fn main() {
    let list = &JobList::new();
    let producers = 4u64;
    let jobs_each = 25_000u64;

    let (claimed_sum, claimed_count) = std::thread::scope(|s| {
        for p in 0..producers {
            s.spawn(move || {
                let mut h = list.domain.handle();
                for i in 0..jobs_each {
                    list.publish(&mut h, p * jobs_each + i);
                }
                // Dropping the handle finalizes the partial retire batch:
                // the producer is off the hook immediately (transparency).
            });
        }
        // One consumer drains concurrently with the producers.
        let mut h = list.domain.handle();
        let mut sum = 0u64;
        let mut count = 0u64;
        while count < producers * jobs_each {
            let (s_, c) = list.claim_all(&mut h);
            sum = sum.wrapping_add(s_);
            count += c;
            if c == 0 {
                std::hint::spin_loop();
            }
        }
        h.flush();
        (sum, count)
    });

    let expected_count = producers * jobs_each;
    let expected_sum: u64 = (0..producers * jobs_each).sum();
    println!("claimed {claimed_count} jobs, payload sum {claimed_sum}");
    assert_eq!(claimed_count, expected_count, "every job claimed exactly once");
    assert_eq!(claimed_sum, expected_sum, "no job lost or duplicated");

    let stats = list.domain.stats();
    println!(
        "allocated {} nodes, freed {} — balanced: {}",
        stats.allocated(),
        stats.freed(),
        stats.balanced()
    );
    assert!(stats.balanced(), "all retired jobs reclaimed after quiescence");
}
