//! Model-checks the Hyaline algorithms across every interleaving of small
//! concurrent scenarios (and random samples of larger ones).
//!
//! ```text
//! cargo run --release --example model_check
//! ```
//!
//! Each row reports the scenario, the exploration mode, how many executions
//! ran, whether the schedule tree was exhausted, and the verdict. A
//! mutation-tested row injects a deliberate algorithm bug and reports the
//! counterexample the explorer finds — demonstrating that a green verdict
//! is meaningful.

use interleave::model::Fault;
use interleave::{scenarios, Explorer};

fn main() {
    println!("== Hyaline interleaving model check ==\n");
    println!(
        "{:<44} {:>10} {:>9} {:>8}  verdict",
        "scenario", "executions", "complete", "depth"
    );

    // Two-thread shapes complete exhaustively (203k-4.2M schedules).
    let exhaustive = [
        scenarios::retire_churn(2, 1, 1),
        scenarios::retire_churn(2, 1, 2),
        scenarios::reader_vs_retirer(1),
        scenarios::reader_vs_retirer(2),
        scenarios::hyaline1_churn(2, 1),
        scenarios::hyaline_s_churn(2, 1, 2),
        scenarios::stalled_reader_robustness(1),
        scenarios::stalled_reader_robustness(2),
        scenarios::stalled_reader_nonrobust(2),
    ];
    for s in &exhaustive {
        let o = Explorer::exhaustive(8_000_000).run(s);
        report(&s.name, "exhaustive", &o);
    }

    // Larger shapes: bounded DFS prefix plus a seeded random sample.
    let sampled = [
        scenarios::retire_churn(2, 2, 1),
        scenarios::reader_overlap(1),
        scenarios::reader_overlap(2),
        scenarios::trim_pipeline(1),
        scenarios::trim_pipeline(2),
        scenarios::hyaline1_churn(2, 2),
        scenarios::retire_churn(3, 2, 2),
        scenarios::retire_churn(4, 1, 2),
        scenarios::hyaline1_churn(3, 2),
    ];
    for s in &sampled {
        let o = Explorer::exhaustive(500_000).run(s);
        report(&s.name, "dfs-prefix", &o);
        let o = Explorer::random(20_000, 0xDA7A).run(s);
        report(&s.name, "random", &o);
    }

    println!("\n-- mutation testing: the checker must catch broken accounting --");
    let mutations = [
        scenarios::with_fault(scenarios::retire_churn(2, 1, 2), Fault::SkipEmptyAdjust),
        scenarios::with_fault(
            scenarios::retire_churn(2, 1, 2),
            Fault::NoAdjsInPredecessorCredit,
        ),
        scenarios::with_fault(scenarios::retire_churn(2, 1, 2), Fault::NoDetachOnLastLeave),
        scenarios::with_fault(
            scenarios::stalled_reader_robustness(2),
            Fault::IgnoreBirthEras,
        ),
    ];
    for s in &mutations {
        let o = Explorer::exhaustive(8_000_000).run(s);
        match &o.violation {
            Some(v) => println!(
                "{:<44} found after {} executions: {}",
                s.name, o.executions, v.message
            ),
            None => println!("{:<44} !! NOT FOUND (checker is too weak)", s.name),
        }
    }
}

fn report(name: &str, mode: &str, o: &interleave::Outcome) {
    let verdict = match &o.violation {
        Some(v) => format!("VIOLATION: {v}"),
        None => "ok".to_string(),
    };
    println!(
        "{:<44} {:>10} {:>9} {:>8}  [{mode}] {verdict}",
        name, o.executions, o.complete, o.max_depth
    );
}
