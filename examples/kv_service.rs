//! The connection-scale oversubscription demo: 10 000 simulated client
//! connections share a `Sharded<Hyaline>` KV cache through a handle
//! registry capped at 4 — the paper's Figure-8/9 "more threads than cores"
//! story, restated as "more tasks than handles".
//!
//! Run with: `cargo run --release --example kv_service`
//!
//! Each connection is a cooperative task on `smr_async`'s executor. Per
//! burst it awaits a `smr_async::TaskGuard` (async FIFO
//! checkout from the `HandlePool` — no worker thread ever blocks), churns
//! gets/puts/deletes against the shared map, then returns the handle
//! *dirty*: the deferred flush is handed to a background reclaimer task
//! through a bounded queue, keeping retire work off the request path. On
//! shutdown the reclaimers drain their queues, sweep the stragglers, and
//! rejoin — the run ends with zero dirty handles by construction.

use hyaline_repro::hyaline::Hyaline;
use hyaline_repro::lockfree_ds::MichaelHashMap;
use hyaline_repro::smr_async::{run_kv_service, KvConfig};
use hyaline_repro::smr_core::{HandlePool, Sharded, SmrConfig};

fn main() {
    let config = SmrConfig {
        slots: 16,
        shards: 4,
        max_threads: 8,
        ..SmrConfig::default()
    };
    let map: MichaelHashMap<u64, u64, Sharded<Hyaline<_>>> =
        MichaelHashMap::with_config(config);
    // The whole point: the registry budget is tiny and fixed while the
    // connection count is not. 10k tasks multiplex 4 handles.
    let pool = HandlePool::new(map.domain(), 4);

    let cfg = KvConfig {
        connections: 10_000,
        ops_per_connection: 64,
        burst: 16,
        key_range: 4_096,
        get_pct: 70,
        put_pct: 20,
        reclaim_shards: 2,
        queue_capacity: 64,
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        seed: 0xcafe_f00d,
    };
    let report = run_kv_service(&map, &pool, &cfg);

    println!(
        "served {} connections x {} ops = {} ops in {:.3}s ({:.2} Mops/s)",
        cfg.connections,
        cfg.ops_per_connection,
        report.ops,
        report.elapsed.as_secs_f64(),
        report.mops()
    );
    println!(
        "registry: {} handles issued for {} connections (cap {})",
        pool.issued(),
        cfg.connections,
        pool.capacity()
    );
    println!(
        "reclaimers: {} deferred flushes performed, {} vacuous, {} swept at shutdown",
        report.reclaim.flushed, report.reclaim.vacuous, report.reclaim.swept
    );
    println!(
        "peak retired-but-unreclaimed during the run: {}",
        report.peak_unreclaimed
    );
    assert_eq!(pool.dirty(), 0, "shutdown handshake flushed everything");
}
