//! Writing a lock-free structure with the typed-pointer API.
//!
//! This is the README's "writing a structure" walk-through as a runnable
//! example: a complete Treiber stack in ~40 lines where every traversal
//! dereference is a safe, borrow-branded `Shared` and the only `unsafe`
//! left is the retire-safety argument in `pop` (plus the exclusive
//! teardown in `Drop`). Compare with `examples/custom_structure.rs`,
//! which shows the same discipline hand-rolled on the raw
//! `SmrHandle::protect`/`retire` API.
//!
//! Run with: `cargo run --release --example typed_stack`

use hyaline::Hyaline;
use smr_core::typed::{Atomic, Guard};
use smr_core::{Smr, SmrConfig, SmrHandle};

struct Node<T> {
    value: T,
    next: Atomic<Node<T>>,
}

struct Stack<T: Send + Sync + 'static, S: Smr<Node<T>>> {
    domain: S,
    top: Atomic<Node<T>>,
}

impl<T: Clone + Send + Sync + 'static, S: Smr<Node<T>>> Stack<T, S> {
    fn new() -> Self {
        Self {
            domain: S::with_config(SmrConfig::default()),
            top: Atomic::null(),
        }
    }

    fn push<'a>(&'a self, h: &mut S::Handle<'a>, value: T) {
        let g = Guard::over(h);
        let mut node = g.alloc(Node {
            value,
            next: Atomic::null(),
        });
        let mut top = self.top.fetch();
        loop {
            node.as_ref().next.store(top);
            // On success the node's ownership moves into the stack; on
            // failure we get it back, unpublished, and retry.
            match self.top.compare_exchange_weak_owned(top, node) {
                Ok(_) => return,
                Err((now, back)) => {
                    top = now;
                    node = back;
                }
            }
        }
    }

    fn pop<'a>(&'a self, h: &mut S::Handle<'a>) -> Option<T> {
        let g = Guard::over(h);
        loop {
            // `load` routes through the scheme's protection slot 0 and
            // returns a `Shared` borrow-branded to `g`: dereferencing it
            // is safe for as long as the guard lives.
            let top = self.top.load(0, &g);
            let top_ref = top.as_ref()?;
            let next = top_ref.next.fetch();
            if self.top.compare_exchange(top, next).is_ok() {
                let value = top_ref.value.clone();
                // SAFETY: the successful CAS unlinked `top`; only the
                // winning popper reaches this retire, and pushes only
                // ever link fresh nodes, so no new reference can form.
                unsafe { g.defer_retire(top) };
                return Some(value);
            }
        }
    }
}

impl<T: Send + Sync + 'static, S: Smr<Node<T>>> Drop for Stack<T, S> {
    fn drop(&mut self) {
        let mut handle = self.domain.handle();
        let g = Guard::over(&mut handle);
        let mut curr = self.top.fetch();
        while !curr.is_null() {
            // SAFETY: `Drop` has `&mut self` — the remaining chain is
            // exclusively ours to walk and free.
            let next = unsafe { curr.deref() }.next.fetch();
            // SAFETY: same exclusive-teardown argument.
            unsafe { g.dealloc(curr) };
            curr = next;
        }
    }
}

fn main() {
    let stack: Stack<u64, Hyaline<_>> = Stack::new();
    let stack = &stack;
    let popped = std::sync::atomic::AtomicU64::new(0);
    let popped = &popped;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                let mut h = stack.domain.handle();
                for i in 0..10_000 {
                    h.enter();
                    if i % 2 == 0 {
                        stack.push(&mut h, t * 100_000 + i);
                    } else if stack.pop(&mut h).is_some() {
                        popped.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    h.leave();
                }
                h.flush();
            });
        }
    });
    println!(
        "4 threads pushed 20000 values, popped {} concurrently; the rest drop with the stack",
        popped.load(std::sync::atomic::Ordering::Relaxed)
    );
    let stats = stack.domain.stats();
    println!(
        "domain stats: {} allocated, {} retired, {} freed",
        stats.allocated(),
        stats.retired(),
        stats.freed()
    );
}
