//! The paper's headline scenario (§1, §6): oversubscription.
//!
//! Run with: `cargo run --release --example oversubscribed`
//!
//! When threads far outnumber cores, epoch-based reclamation suffers: its
//! reclamation requires checking *all* threads' reservations, and preempted
//! threads hold epochs back. Hyaline's tracking is asynchronous — threads
//! dereference retirement lists exactly once on leave, and whoever holds
//! the last reference frees the batch. The paper measured >30% gains in
//! oversubscribed hash-map runs (§6); this example reruns that comparison
//! on your machine.

use bench_harness::driver::{run_bench, BenchParams};
use bench_harness::workload::OpMix;
use hyaline::Hyaline;
use lockfree_ds::MichaelHashMap;
use smr_baselines::Ebr;
use smr_core::{Sharded, SmrConfig};

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // A paper-scale slot budget: big enough that retire cost (proportional
    // to the slot count) is visible, so sharding it 8 ways matters.
    let slots = (cores * 8).next_power_of_two().max(64);
    let params = |threads: usize| BenchParams {
        threads,
        secs: 0.4,
        prefill: 2_048,
        key_range: 4_096,
        mix: OpMix::WriteIntensive,
        config: SmrConfig {
            slots,
            shards: 8,
            max_threads: 1024,
            ..SmrConfig::default()
        },
        ..BenchParams::default()
    };

    println!("Michael hash map, write-intensive, {cores} cores, {slots} slots:");
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>8}",
        "threads", "Epoch Mops", "Hyaline Mops", "Sharded Mops", "gain"
    );
    for factor in [1usize, 2, 4, 8] {
        let threads = cores * factor;
        let p = params(threads);
        let epoch = run_bench::<Ebr<_>, MichaelHashMap<u64, u64, _>>(&p);
        let hyaline = run_bench::<Hyaline<_>, MichaelHashMap<u64, u64, _>>(&p);
        let sharded = run_bench::<Sharded<Hyaline<_>>, MichaelHashMap<u64, u64, _>>(&p);
        println!(
            "{:>10} {:>12.3} {:>14.3} {:>14.3} {:>7.1}%",
            threads,
            epoch.mops,
            hyaline.mops,
            sharded.mops,
            (sharded.mops / epoch.mops - 1.0) * 100.0
        );
    }
    println!(
        "\n(the paper reports Hyaline pulling ahead of Epoch as threads exceed \
         cores; Sharded<Hyaline> splits the {slots}-slot domain into 8 shards \
         routed per bucket group, shortening every retire list)"
    );
}
