//! §3.3 trimming: reclaiming mid-operation without touching `Head`.
//!
//! Run with: `cargo run --release --example trim_pipeline`
//!
//! A pipeline stage performs many map operations in a row. Wrapping the
//! whole burst in one `enter`/`leave` pins every node retired during the
//! burst; calling `leave`+`enter` per operation pays two atomic updates to
//! the slot head each time. `trim` is the paper's middle path: logically a
//! `leave` followed by an `enter`, it dereferences the nodes retired since
//! the reservation began — letting them reclaim — *without* altering
//! `Head`. The paper's Figure 10b shows trim recovering the contention loss
//! of a deliberately small slot count; this example shows the memory side:
//! how trim keeps the unreclaimed backlog flat during a long burst.

use hyaline::Hyaline;
use lockfree_ds::MichaelHashMap;
use smr_core::{Smr, SmrConfig, SmrHandle};

const BURST: u64 = 40_000;
const KEYS: u64 = 1_024;

/// Runs one long burst of insert/remove pairs under the given reservation
/// policy, sampling the peak retired-but-unreclaimed backlog.
fn run_burst(policy: &str) -> (u64, u64) {
    let map: MichaelHashMap<u64, u64, Hyaline<_>> = MichaelHashMap::with_config(SmrConfig {
        // Deliberately few slots, as in the paper's trimming experiment
        // (Figure 10b caps k at 32, far below the core count).
        slots: 2,
        batch_min: 16,
        ..SmrConfig::default()
    });
    let mut h = map.smr_handle();
    let mut peak = 0u64;

    h.enter();
    for i in 0..BURST {
        let key = i % KEYS;
        map.insert(&mut h, key, i);
        map.remove(&mut h, &key);
        match policy {
            // One reservation for the whole burst: nothing retired during
            // the burst can be reclaimed until the final leave.
            "pin" => {}
            // §3.3: dereference what was retired since the last trim; stay
            // inside the operation.
            "trim" => {
                if i % 64 == 63 {
                    h.trim();
                }
            }
            _ => unreachable!(),
        }
        if i % 512 == 0 {
            peak = peak.max(map.domain().stats().unreclaimed());
        }
    }
    h.leave();
    h.flush();
    let final_unreclaimed = map.domain().stats().unreclaimed();
    drop(h);
    (peak, final_unreclaimed)
}

fn main() {
    println!("One thread, {BURST} insert+remove pairs inside a single enter/leave window:\n");
    let (pin_peak, pin_final) = run_burst("pin");
    println!("  without trim: peak unreclaimed backlog {pin_peak:>8} nodes (final {pin_final})");
    let (trim_peak, trim_final) = run_burst("trim");
    println!("  with trim:    peak unreclaimed backlog {trim_peak:>8} nodes (final {trim_final})");
    println!();
    assert!(
        trim_peak < pin_peak / 4,
        "trim should keep the backlog far below the pinned burst \
         (trim {trim_peak} vs pinned {pin_peak})"
    );
    println!(
        "trim kept the backlog {}x smaller while never releasing the reservation window",
        pin_peak.checked_div(trim_peak).unwrap_or(pin_peak)
    );
}
