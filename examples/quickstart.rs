//! Quickstart: protect, retire and reclaim with Hyaline.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Mirrors the paper's Figure 1a: every data-structure operation is
//! bracketed by `enter`/`leave`; unlinked nodes are `retire`d and freed by
//! whichever thread drops the last reference to their batch.

use hyaline::Hyaline;
use lockfree_ds::MichaelHashMap;
use smr_core::{Smr, SmrHandle};

fn main() {
    // One reclamation domain per data structure; Hyaline needs no thread
    // registration — any number of threads may use the fixed slots.
    let map: MichaelHashMap<u64, String, Hyaline<_>> = MichaelHashMap::new();
    let map = &map;

    std::thread::scope(|s| {
        // Writers insert and remove, retiring nodes as they go.
        for w in 0..2u64 {
            s.spawn(move || {
                let mut h = map.smr_handle();
                for i in 0..10_000 {
                    let key = (w * 256 + i) % 512;
                    h.enter();
                    map.insert(&mut h, key, format!("value-{key}"));
                    h.leave();
                    // Remove a *different* key so readers see a live window.
                    h.enter();
                    map.remove(&mut h, &((key + 128) % 512));
                    h.leave();
                }
                // The handle drop finalizes any partial batch: this thread
                // is immediately "off the hook" (the paper's transparency).
            });
        }
        // Readers traverse concurrently; `protect` guards every pointer.
        s.spawn(move || {
            let mut h = map.smr_handle();
            let mut hits = 0u64;
            for i in 0..50_000 {
                h.enter();
                if map.get(&mut h, &(i % 1024)).is_some() {
                    hits += 1;
                }
                h.leave();
            }
            println!("reader observed {hits} hits");
        });
    });

    let stats = map.domain().stats();
    println!(
        "allocated {} nodes, retired {}, freed {}, directly deallocated {}",
        stats.allocated(),
        stats.retired(),
        stats.freed(),
        stats.deallocated(),
    );
    println!(
        "unreclaimed after quiescence: {} (Hyaline reclaims everything once all threads leave)",
        stats.unreclaimed()
    );
    assert!(stats.balanced() || stats.unreclaimed() == 0);
}
