//! The paper's motivating dynamic-thread scenario (§1, §2.4): a server that
//! spawns a short-lived thread ("fiber") per client session, all sharing
//! one global lock-free map.
//!
//! Run with: `cargo run --release --example server_sessions`
//!
//! Most SMR schemes require threads to register and *block* on
//! unregistration until their retired nodes can be freed. Hyaline is
//! transparent: sessions come and go freely — a dropped handle finalizes
//! its partial batch and the thread is "off the hook" instantly, with the
//! remaining threads completing the reclamation asynchronously.

use hyaline::Hyaline;
use lockfree_ds::{MichaelHashMap, MsQueue};
use smr_core::{Smr, SmrHandle};
use std::sync::atomic::{AtomicU64, Ordering};

const SESSIONS: u64 = 200;
const OPS_PER_SESSION: u64 = 500;

fn main() {
    // Global state shared by all client sessions.
    let sessions_db: MichaelHashMap<u64, u64, Hyaline<_>> = MichaelHashMap::new();
    let audit_log: MsQueue<u64, Hyaline<_>> = MsQueue::new();
    let db = &sessions_db;
    let log = &audit_log;
    let completed = &AtomicU64::new(0);

    // A small worker pool accepts "connections"; each connection runs on a
    // fresh handle that lives only as long as the session.
    std::thread::scope(|s| {
        for worker in 0..4u64 {
            s.spawn(move || {
                for session in (worker..SESSIONS).step_by(4) {
                    // A brand-new handle per session: no registration step.
                    let mut h = db.smr_handle();
                    let mut lh = log.smr_handle();
                    for op in 0..OPS_PER_SESSION {
                        let key = session * OPS_PER_SESSION + op;
                        h.enter();
                        db.insert(&mut h, key % 4_096, session);
                        h.leave();
                        if op % 16 == 0 {
                            h.enter();
                            db.remove(&mut h, &((key + 7) % 4_096));
                            h.leave();
                        }
                        if op % 64 == 0 {
                            lh.enter();
                            log.enqueue(&mut lh, key);
                            lh.leave();
                        }
                    }
                    // Session ends: handles drop here with retired nodes
                    // possibly still in flight. Nothing blocks; the nodes
                    // are handed over through the slot lists.
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // A background auditor drains the log concurrently.
        s.spawn(move || {
            let mut lh = log.smr_handle();
            let mut drained = 0u64;
            while completed.load(Ordering::Relaxed) < SESSIONS {
                lh.enter();
                if log.dequeue(&mut lh).is_some() {
                    drained += 1;
                }
                lh.leave();
            }
            lh.enter();
            while log.dequeue(&mut lh).is_some() {
                drained += 1;
            }
            lh.leave();
            println!("auditor drained {drained} log entries");
        });
    });

    let stats = sessions_db.domain().stats();
    println!(
        "{} sessions served by short-lived handles; db unreclaimed after quiescence: {}",
        completed.load(Ordering::Relaxed),
        stats.unreclaimed()
    );
    assert_eq!(completed.load(Ordering::Relaxed), SESSIONS);
    assert_eq!(stats.unreclaimed(), 0, "no session left memory on the hook");
}
