//! Robustness demo (§4.2, Figure 10a): what one stalled thread does to
//! memory under Hyaline vs Hyaline-S.
//!
//! Run with: `cargo run --release --example robust_stall`
//!
//! A "stalled" thread enters an operation, touches the structure, and then
//! stops cooperating. Under basic Hyaline (like EBR) every batch retired
//! into its slot afterwards stays pinned. Hyaline-S stamps allocations with
//! birth eras and skips slots whose access era is stale, so the stalled
//! thread pins only what it could actually reference.

use hyaline::{Hyaline, HyalineS};
use lockfree_ds::{ConcurrentMap, MichaelHashMap};
use smr_core::{Smr, SmrConfig, SmrHandle};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

const CHURN_OPS: u64 = 400_000;

fn run_with_stall<S>(label: &str) -> u64
where
    S: Smr<lockfree_ds::ListNode<u64, u64>>,
    MichaelHashMap<u64, u64, S>: ConcurrentMap<S, Node = lockfree_ds::ListNode<u64, u64>>,
{
    let map: MichaelHashMap<u64, u64, S> = MichaelHashMap::with_config(SmrConfig {
        slots: 4,
        max_threads: 64,
        era_freq: 64,
        ack_threshold: 512,
        ..SmrConfig::default()
    });
    let map = &map;
    let ready = &Barrier::new(2);
    let done = &AtomicBool::new(false);

    let unreclaimed = std::thread::scope(|s| {
        // The stalled thread: enters, reads a little, then goes quiet
        // without leaving.
        s.spawn(move || {
            let mut h = map.smr_handle();
            h.enter();
            for k in 0..4 {
                map.map_get(&mut h, k);
            }
            ready.wait();
            while !done.load(Ordering::Acquire) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            h.leave(); // finally cooperates at shutdown
        });

        // The worker churns allocations: insert then remove the same key.
        ready.wait();
        let mut h = map.smr_handle();
        for i in 0..CHURN_OPS {
            let key = i % 1_024;
            h.enter();
            map.map_insert(&mut h, key, i);
            h.leave();
            h.enter();
            map.map_remove(&mut h, key);
            h.leave();
        }
        h.flush();
        let pinned = map.stats().unreclaimed();
        done.store(true, Ordering::Release);
        pinned
    });

    println!(
        "{label:<12} worker churned {CHURN_OPS} insert/remove pairs; \
         {unreclaimed} nodes pinned by the stalled thread"
    );
    unreclaimed
}

fn main() {
    let plain = run_with_stall::<Hyaline<_>>("Hyaline");
    let robust = run_with_stall::<HyalineS<_>>("Hyaline-S");
    println!(
        "\nHyaline-S pinned {:.1}x less memory ({} vs {})",
        plain as f64 / robust.max(1) as f64,
        robust,
        plain
    );
    assert!(
        robust < plain / 4,
        "Hyaline-S should bound what a stalled thread pins"
    );
}
