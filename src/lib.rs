//! Workspace root crate for the Hyaline reproduction.
//!
//! This crate only re-exports the member crates so that the repository-level
//! `examples/` and `tests/` directories can exercise the whole stack through a
//! single dependency. The actual implementation lives in:
//!
//! * [`smr_core`] — shared SMR traits, tagged pointers, the universal node
//!   header, statistics, and the global era clock.
//! * [`hyaline`] — the paper's contribution: Hyaline, Hyaline-1, Hyaline-S and
//!   Hyaline-1S, plus `trim` and adaptive slot resizing.
//! * [`smr_baselines`] — Leaky, EBR, HP, HE, 2GE-IBR and LFRC baselines.
//! * [`lockfree_ds`] — the benchmark data structures (Harris–Michael list,
//!   Michael hash map, Bonsai tree, Natarajan–Mittal tree, Treiber stack,
//!   Michael–Scott queue), generic over any SMR scheme.
//! * [`bench_harness`] — workload generation and the figure/table drivers.
//! * [`interleave`] — deterministic interleaving exploration (model checking)
//!   of the core algorithms.
//! * [`smr_async`] — the async-native service layer: a dependency-free
//!   executor, task-scoped guards over `HandlePool`, background reclaimer
//!   tasks, and the connection-scale KV demo service.

pub use bench_harness;
pub use hyaline;
pub use interleave;
pub use lockfree_ds;
pub use smr_async;
pub use smr_baselines;
pub use smr_core;
